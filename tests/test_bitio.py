"""Unit + property tests for the bit I/O substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.bitio import (
    BitReader,
    BitWriter,
    decode_uvarint,
    decode_varint,
    encode_uvarint,
    encode_varint,
    gather_bits,
)
from repro.errors import ContainerError, DecodeError


class TestBitWriter:
    def test_empty(self):
        w = BitWriter()
        assert len(w) == 0
        assert w.to_bytes() == b""

    def test_single_bits_msb_first(self):
        w = BitWriter()
        for b in (1, 0, 1, 1):
            w.write_bit(b)
        assert w.to_bytes() == bytes([0b10110000])

    def test_write_bits_value(self):
        w = BitWriter()
        w.write_bits(0b101, 3)
        w.write_bit(1)
        assert w.to_bytes() == bytes([0b10110000])

    def test_multibyte(self):
        w = BitWriter()
        w.write_bits(0xABC, 12)
        w.write_bits(0xDEF, 12)
        assert w.to_bytes() == bytes([0xAB, 0xCD, 0xEF])

    def test_zero_width_is_noop(self):
        w = BitWriter()
        w.write_bits(0, 0)
        assert len(w) == 0

    def test_value_too_wide_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(4, 2)

    def test_negative_value_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(-1, 4)

    def test_bad_bit_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bit(2)

    def test_negative_width_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(0, -1)

    def test_align_to_byte(self):
        w = BitWriter()
        w.write_bits(0b1, 1)
        w.align_to_byte()
        w.write_bits(0xFF, 8)
        assert w.to_bytes() == bytes([0b10000000, 0xFF])

    def test_byte_length(self):
        w = BitWriter()
        assert w.byte_length == 0
        w.write_bit(1)
        assert w.byte_length == 1
        w.write_bits(0, 7)
        assert w.byte_length == 1
        w.write_bit(0)
        assert w.byte_length == 2

    def test_unary(self):
        w = BitWriter()
        w.write_unary(3)
        assert w.to_bytes() == bytes([0b11100000])

    def test_signed(self):
        w = BitWriter()
        w.write_signed(-5, 4)
        w.write_signed(5, 4)
        r = BitReader(w.to_bytes())
        assert r.read_signed(4) == -5
        assert r.read_signed(4) == 5


class TestBitReader:
    def test_roundtrip_simple(self):
        r = BitReader(bytes([0b10110000]))
        assert [r.read_bit() for _ in range(4)] == [1, 0, 1, 1]

    def test_read_bits(self):
        r = BitReader(bytes([0xAB, 0xCD, 0xEF]))
        assert r.read_bits(12) == 0xABC
        assert r.read_bits(12) == 0xDEF

    def test_exhaustion_raises(self):
        r = BitReader(b"\x00")
        r.read_bits(8)
        with pytest.raises(DecodeError):
            r.read_bit()

    def test_read_past_end_raises(self):
        r = BitReader(b"\x00")
        with pytest.raises(DecodeError):
            r.read_bits(9)

    def test_zero_width_read(self):
        r = BitReader(b"")
        assert r.read_bits(0) == 0

    def test_unary(self):
        r = BitReader(bytes([0b11100000]))
        assert r.read_unary() == 3

    def test_align(self):
        r = BitReader(bytes([0b10000000, 0xFF]))
        r.read_bit()
        r.align_to_byte()
        assert r.read_bits(8) == 0xFF

    def test_start_bit(self):
        r = BitReader(bytes([0xAB]), start_bit=4)
        assert r.read_bits(4) == 0xB

    def test_bad_start_bit(self):
        with pytest.raises(ValueError):
            BitReader(b"\x00", start_bit=9)

    def test_bits_remaining(self):
        r = BitReader(b"\xff\xff")
        assert r.bits_remaining == 16
        r.read_bits(5)
        assert r.bits_remaining == 11


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=2**20 - 1),
                  st.integers(min_value=20, max_value=24)),
        max_size=50,
    )
)
def test_bitio_roundtrip_property(pairs):
    """Anything written field-by-field reads back identically."""
    w = BitWriter()
    for value, width in pairs:
        w.write_bits(value, width)
    r = BitReader(w.to_bytes())
    for value, width in pairs:
        assert r.read_bits(width) == value


@given(st.lists(st.integers(min_value=-(2**40), max_value=2**40), max_size=30))
def test_signed_series_roundtrip_property(values):
    w = BitWriter()
    for v in values:
        w.write_signed(v, 41)
    r = BitReader(w.to_bytes())
    for v in values:
        assert r.read_signed(41) == v


class TestGatherBits:
    def test_matches_bitreader(self):
        import numpy as np

        w = BitWriter()
        values = [0, 1, 2**16 - 1, 12345, 2**31 - 1, 7]
        widths = [1, 3, 16, 17, 32, 5]
        positions = []
        p = 0
        for v, width in zip(values, widths):
            positions.append(p)
            w.write_bits(v, width)
            p += width
        blob = w.to_bytes()
        got = gather_bits(blob, np.array(positions), np.array(widths))
        assert got.tolist() == values
        # Cross-check against sequential reads.
        r = BitReader(blob)
        assert [r.read_bits(width) for width in widths] == values

    def test_broadcasts_row_widths(self):
        import numpy as np

        blob = bytes(range(32))
        pos = np.arange(0, 64, 8).reshape(2, 4)
        out = gather_bits(blob, pos, np.array([[8], [4]]))
        assert out.shape == (2, 4)
        assert out[0].tolist() == [0, 1, 2, 3]
        assert out[1].tolist() == [0, 0, 0, 0]  # top nibbles of 4..7

    def test_out_of_range_rejected(self):
        import numpy as np

        with pytest.raises(DecodeError):
            gather_bits(b"\xff", np.array([4]), 8)

    def test_width_cap(self):
        import numpy as np

        with pytest.raises(ValueError):
            gather_bits(b"\xff" * 16, np.array([0]), 33)

    def test_empty_positions(self):
        import numpy as np

        assert gather_bits(b"", np.array([], dtype=np.int64), 8).size == 0


class TestVarint:
    @pytest.mark.parametrize(
        "value", [0, 1, 127, 128, 300, 2**14, 2**21 - 1, 2**32, 2**63 - 1]
    )
    def test_uvarint_roundtrip(self, value):
        blob = encode_uvarint(value)
        out, pos = decode_uvarint(blob)
        assert out == value
        assert pos == len(blob)

    @pytest.mark.parametrize("value", [0, 1, -1, 63, -64, 2**31, -(2**31)])
    def test_varint_roundtrip(self, value):
        blob = encode_varint(value)
        out, pos = decode_varint(blob)
        assert out == value
        assert pos == len(blob)

    def test_uvarint_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_uvarint(-1)

    def test_truncated_raises(self):
        blob = encode_uvarint(2**20)
        with pytest.raises(ContainerError):
            decode_uvarint(blob[:-1])

    def test_single_byte_values_compact(self):
        assert len(encode_uvarint(127)) == 1
        assert len(encode_uvarint(128)) == 2

    def test_offset_decoding(self):
        blob = b"\xff" + encode_uvarint(5)
        value, pos = decode_uvarint(blob, offset=1)
        assert value == 5
        assert pos == len(blob)

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_uvarint_property(self, value):
        out, _ = decode_uvarint(encode_uvarint(value))
        assert out == value

    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_varint_property(self, value):
        out, _ = decode_varint(encode_varint(value))
        assert out == value
