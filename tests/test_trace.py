"""Cross-layer request tracing (``repro.trace``, DESIGN.md §17).

Three contracts under test:

- the **disabled fast path** costs nothing: no lock acquisition, no
  allocation, no clock read — proven by poisoning the module lock and
  exercising every entry point;
- the **histogram** answers quantile queries within one log-bucket of
  numpy's exact percentiles, in bounded memory, and merges losslessly;
- the **Chrome export** is schema-valid and stitches one request's
  spans accept -> service -> shard worker -> write across process
  boundaries, with worker pids distinct from the serve pid, even while
  a worker is crash-injected and respawned mid-run.
"""

from __future__ import annotations

import json
import os
import threading
import time

import numpy as np
import pytest

from repro import faults, trace
from repro.errors import TraceError
from repro.trace import core as trace_core
from repro.trace.hist import GROWTH, LatencyHistogram, bucket_index, bucket_value


@pytest.fixture(autouse=True)
def _clean_trace():
    trace.reset()
    yield
    trace.reset()
    faults.reset()


# -- histogram ---------------------------------------------------------------


class TestLatencyHistogram:
    def test_empty(self):
        h = LatencyHistogram()
        assert h.count == 0
        assert h.percentile(50) is None
        assert h.mean is None
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["p99_ms"] is None

    def test_percentile_range_checked(self):
        h = LatencyHistogram()
        h.record(0.01)
        with pytest.raises(ValueError):
            h.percentile(-1)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_negative_samples_clamped(self):
        h = LatencyHistogram()
        h.record(-5.0)
        assert h.count == 1
        assert h.min == 0.0

    def test_bucket_roundtrip_monotone(self):
        values = [1e-8, 1e-6, 3.3e-4, 0.01, 0.25, 7.0, 1e4]
        indices = [bucket_index(v) for v in values]
        assert indices == sorted(indices)
        for v in values[1:-1]:
            mid = bucket_value(bucket_index(v))
            # the bucket midpoint is within one growth factor of v
            assert mid / v < GROWTH and v / mid < GROWTH

    def test_quantiles_match_numpy_within_bucket_error(self):
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=-4.0, sigma=1.2, size=20_000)
        h = LatencyHistogram()
        for s in samples:
            h.record(float(s))
        for q in (50, 90, 99, 99.9):
            exact = float(np.percentile(samples, q))
            approx = h.percentile(q)
            # log-bucketed: relative error bounded by one bucket width
            assert approx / exact < GROWTH * 1.01
            assert exact / approx < GROWTH * 1.01
        assert h.count == len(samples)
        assert h.mean == pytest.approx(float(samples.mean()), rel=1e-9)
        assert h.max == pytest.approx(float(samples.max()))

    def test_merge_equals_combined_stream(self):
        rng = np.random.default_rng(8)
        a_samples = rng.exponential(0.01, 5000)
        b_samples = rng.exponential(0.10, 5000)
        a, b, combined = (
            LatencyHistogram(),
            LatencyHistogram(),
            LatencyHistogram(),
        )
        for s in a_samples:
            a.record(float(s))
            combined.record(float(s))
        for s in b_samples:
            b.record(float(s))
            combined.record(float(s))
        a.merge(b)
        assert a.count == combined.count
        assert a.total == pytest.approx(combined.total)
        for q in (50, 99, 99.9):
            assert a.percentile(q) == pytest.approx(combined.percentile(q))

    def test_bounded_memory(self):
        # one million samples must not grow the bucket array
        h = LatencyHistogram()
        rng = np.random.default_rng(9)
        for s in rng.exponential(0.01, 100_000):
            h.record(float(s))
        assert len(h._buckets) == len(LatencyHistogram()._buckets)

    def test_snapshot_fields_ms(self):
        h = LatencyHistogram()
        h.record(0.010)
        snap = h.snapshot()
        assert set(snap) == {
            "count", "mean_ms", "p50_ms", "p90_ms", "p99_ms", "p999_ms",
            "max_ms",
        }
        assert snap["count"] == 1
        assert snap["mean_ms"] == pytest.approx(10.0)
        assert snap["max_ms"] == pytest.approx(10.0)


# -- ring buffer and ids -----------------------------------------------------


class TestSpanRing:
    def test_disabled_by_default(self):
        assert not trace.enabled()
        assert trace.record_span("x", 0.0, 1.0) is None
        assert trace.snapshot() == []

    def test_record_and_drain(self):
        trace.enable()
        sid = trace.record_span("a", 1.0, 2.0, req=7, args={"k": "v"})
        assert isinstance(sid, int)
        child = trace.record_span("b", 1.2, 1.5, parent=sid, req=7)
        assert child != sid
        spans = trace.drain()
        assert [s.name for s in spans] == ["a", "b"]
        assert spans[0].dur == pytest.approx(1.0)
        assert spans[1].parent == sid
        assert spans[0].req == spans[1].req == 7
        assert trace.drain() == []

    def test_ids_unique_across_requests_and_spans(self):
        trace.enable()
        ids = {trace.new_request(), trace.next_span_id(),
               trace.record_span("x", 0.0, 0.1), trace.new_request()}
        assert len(ids) == 4

    def test_ring_bounds_and_dropped(self):
        trace.enable(capacity=8)
        for i in range(20):
            trace.record_span(f"s{i}", 0.0, 0.1)
        spans = trace.snapshot()
        assert len(spans) == 8
        # oldest evicted, newest kept
        assert spans[-1].name == "s19"
        assert trace.dropped() == 12

    def test_negative_duration_clamped(self):
        trace.enable()
        trace.record_span("x", 2.0, 1.0)
        assert trace.snapshot()[0].dur == 0.0

    def test_instant_is_zero_duration(self):
        trace.enable()
        trace.record_instant("mark", args={"n": 1})
        span = trace.snapshot()[0]
        assert span.dur == 0.0

    def test_parent_scope_nesting(self):
        trace.enable()
        assert trace.current_parent() is None
        with trace.parent_scope(5):
            assert trace.current_parent() == 5
            with trace.parent_scope(9):
                assert trace.current_parent() == 9
            assert trace.current_parent() == 5
        assert trace.current_parent() is None

    def test_tracing_context_manager(self):
        with trace.tracing():
            assert trace.enabled()
            trace.record_span("x", 0.0, 0.1)
        assert not trace.enabled()
        assert len(trace.snapshot()) == 1  # ring survives disable

    def test_enable_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            trace.enable(capacity=0)


class TestDisabledFastPath:
    """Satellite 3: the disabled path takes no lock and allocates no
    span — the overhead guard CI gates on."""

    def test_no_lock_taken_when_disabled(self, monkeypatch):
        class PoisonLock:
            def acquire(self, *a, **k):  # pragma: no cover - must not run
                raise AssertionError("disabled trace path took the lock")

            __enter__ = acquire

            def release(self):  # pragma: no cover
                raise AssertionError("disabled trace path took the lock")

            def __exit__(self, *exc):  # pragma: no cover
                raise AssertionError("disabled trace path took the lock")

        monkeypatch.setattr(trace_core, "_lock", PoisonLock())
        assert not trace.enabled()
        assert trace.ts() == 0.0
        assert trace.new_request() is None
        assert trace.next_span_id() is None
        assert trace.record_span("x", 0.0, 1.0) is None
        assert trace.record_instant("x") is None
        assert trace.current_parent() is None

    def test_ts_returns_module_constant(self):
        # identity, not equality: the disabled path must not allocate
        # a fresh float per request
        assert trace.ts() is trace_core._ZERO
        assert trace.ts() is trace.ts()

    def test_disabled_overhead_is_flat(self):
        """record_span when disabled is within noise of a plain
        function call — a generous 20x bound that catches accidental
        locking or clock reads without being timing-flaky."""

        def noop(name, t0, t1):
            return None

        n = 50_000
        t0 = time.perf_counter()
        for _ in range(n):
            noop("x", 0.0, 1.0)
        base = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(n):
            trace.record_span("x", 0.0, 1.0)
        disabled = time.perf_counter() - t0
        assert disabled < base * 20 + 0.05


# -- chrome export and validation -------------------------------------------


class TestChromeExport:
    def _spans(self):
        trace.enable()
        req = trace.new_request()
        root = trace.record_span("net.request", 1.0, 2.0, cat="net", req=req)
        trace.record_span("serve.kernel", 1.2, 1.8, req=req, parent=root)
        trace.record_span(
            "shard.worker", 1.3, 1.7, cat=trace.WORKER_CAT,
            req=req, parent=root, pid=os.getpid() + 1, tid=1,
        )
        trace.record_instant("shard.respawn", args={"worker": 0})
        return trace.drain()

    def test_chrome_trace_shape(self):
        spans = self._spans()
        doc = trace.chrome_trace(spans, main_pid=os.getpid())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in metas}
        assert "recoil-serve" in names
        assert any(n.startswith("shard-worker-") for n in names)
        xs = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(xs) == 3 and len(instants) == 1
        assert instants[0]["s"] == "t"
        root = next(e for e in xs if e["name"] == "net.request")
        child = next(e for e in xs if e["name"] == "serve.kernel")
        assert child["args"]["parent_id"] == root["args"]["span_id"]
        assert child["args"]["request_id"] == root["args"]["request_id"]
        # microsecond conversion
        assert root["ts"] == pytest.approx(1.0e6)
        assert root["dur"] == pytest.approx(1.0e6)

    def test_validate_accepts_own_export(self):
        doc = trace.chrome_trace(self._spans(), main_pid=os.getpid())
        stats = trace.validate_chrome_trace(doc)
        assert stats["spans"] == 3
        assert stats["requests"] == 1
        assert stats["worker_pids"] == [os.getpid() + 1]

    def test_write_and_validate_file(self, tmp_path):
        path = tmp_path / "trace.json"
        doc = trace.write_chrome_trace(
            str(path), self._spans(), main_pid=os.getpid()
        )
        assert json.loads(path.read_text()) == doc
        stats = trace.validate_chrome_trace_file(str(path))
        assert stats["spans"] == 3

    def test_validate_accepts_balanced_be(self):
        doc = {"traceEvents": [
            {"name": "a", "ph": "B", "ts": 1, "pid": 1, "tid": 1},
            {"name": "a", "ph": "E", "ts": 2, "pid": 1, "tid": 1},
        ]}
        assert trace.validate_chrome_trace(doc)["spans"] == 1

    @pytest.mark.parametrize("doc,msg", [
        ([], "traceEvents"),
        ({"traceEvents": {}}, "list"),
        ({"traceEvents": [{"ph": "X", "ts": 1, "pid": 1, "tid": 1,
                           "dur": 1}]}, "name"),
        ({"traceEvents": [{"name": "a", "ph": "Z", "ts": 1, "pid": 1,
                           "tid": 1}]}, "phase"),
        ({"traceEvents": [{"name": "a", "ph": "X", "pid": 1,
                           "tid": 1, "dur": 1}]}, "ts"),
        ({"traceEvents": [{"name": "a", "ph": "X", "ts": -1, "pid": 1,
                           "tid": 1, "dur": 1}]}, "ts"),
        ({"traceEvents": [{"name": "a", "ph": "X", "ts": 1, "pid": 1,
                           "tid": 1}]}, "dur"),
        ({"traceEvents": [{"name": "a", "ph": "X", "ts": 1, "pid": 1,
                           "tid": 1, "dur": -2}]}, "dur"),
        ({"traceEvents": [{"name": "a", "ph": "B", "ts": 1, "pid": 1,
                           "tid": 1}]}, "unbalanced"),
        ({"traceEvents": [{"name": "a", "ph": "E", "ts": 1, "pid": 1,
                           "tid": 1}]}, "no open"),
        ({"traceEvents": [
            {"name": "a", "ph": "B", "ts": 1, "pid": 1, "tid": 1},
            {"name": "b", "ph": "E", "ts": 2, "pid": 1, "tid": 1},
        ]}, "does not match"),
        ({"traceEvents": [
            {"name": "w", "cat": "shard", "ph": "X", "ts": 1, "pid": 3,
             "tid": 1, "dur": 1},
            {"name": "s", "cat": "serve", "ph": "X", "ts": 1, "pid": 3,
             "tid": 2, "dur": 1},
        ]}, "share a pid"),
    ])
    def test_validate_rejects(self, doc, msg):
        with pytest.raises(TraceError, match=msg):
            trace.validate_chrome_trace(doc)


# -- end-to-end: traced serve across process boundaries ---------------------


class TestEndToEnd:
    def test_traced_request_stitches_across_layers(self):
        """One traced decode through the full network stack on the
        process backend, with a worker crash injected mid-run: the
        exported trace must be schema-valid, place worker spans under
        distinct worker pids, link net -> serve -> shard spans into
        one request tree, and show the respawn instant."""
        from repro.data import text_surrogate
        from repro.parallel.shards import sharding_available
        from repro.serve import (
            NetConfig, NetServer, RecoilClient, RecoilService, ServiceConfig,
        )

        if not sharding_available():
            pytest.skip("process backend unavailable")

        data = text_surrogate(20_000, target_entropy=5.29, seed=11)
        config = ServiceConfig(
            decode_backend="process",
            decode_workers=2,
            # crash -> degrade to thread; probe (and respawn the dead
            # worker) quickly so the trace shows the heal in-test.
            repromote_cooldown_s=0.2,
        )
        trace.enable()
        with faults.inject_spec("worker.crash:nth=2"):
            with RecoilService(config=config) as service:
                service.put_asset("asset", data, num_splits=32)
                with NetServer(service, NetConfig(port=0)) as server:
                    host, port = server.address
                    with RecoilClient(host, port, seed=3) as client:
                        for _ in range(6):
                            out = client.decompress("asset", 4)
                            assert np.array_equal(out, data)
                        deadline = time.monotonic() + 10.0
                        while time.monotonic() < deadline:
                            out = client.decompress("asset", 4)
                            assert np.array_equal(out, data)
                            if any(
                                s.name == "shard.respawn"
                                for s in trace.snapshot()
                            ):
                                break
                            time.sleep(0.1)
                        doc = client.trace()
        spans = trace.drain()
        trace.disable()

        stats = trace.validate_chrome_trace(doc)
        serve_pid = os.getpid()
        assert serve_pid in stats["pids"]
        assert stats["worker_pids"], "no worker-side spans shipped back"
        assert serve_pid not in stats["worker_pids"]
        assert stats["requests"] >= 6

        by_name: dict[str, list] = {}
        for s in spans:
            by_name.setdefault(s.name, []).append(s)
        for required in ("net.accept", "net.read", "net.request",
                         "serve.request", "serve.kernel", "serve.batch",
                         "shard.worker", "net.write"):
            assert required in by_name, f"missing span {required!r}"
        assert "shard.respawn" in by_name, "worker respawn not visible"

        # stitch check: a serve.request span's parent is a net.request
        # root, and a shard.worker span's parent chain reaches a
        # serve.batch span recorded parent-side.
        net_roots = {s.sid for s in by_name["net.request"]}
        assert any(
            s.parent in net_roots for s in by_name["serve.request"]
        ), "service spans did not link to a network root"
        batch_sids = {s.sid for s in by_name["serve.batch"]}
        workers = by_name["shard.worker"]
        assert any(w.parent in batch_sids for w in workers), (
            "worker spans did not link to a batch span"
        )
        worker_pids = {w.pid for w in workers}
        assert serve_pid not in worker_pids
        for w in workers:
            assert w.cat == trace.WORKER_CAT
            assert w.dur >= 0.0

    def test_stage_histograms_populated_and_consistent(self):
        """metrics_snapshot() gains per-stage quantiles whose means
        sum to (approximately) the end-to-end request mean."""
        from repro.data import text_surrogate
        from repro.serve.service import RecoilService

        data = text_surrogate(20_000, target_entropy=5.29, seed=11)
        with RecoilService() as service:
            service.put_asset("asset", data, num_splits=32)
            for _ in range(4):
                req = service.submit("asset", 4)
                assert np.array_equal(req.result(60), data)
            snap = service.metrics_snapshot()
        stages = snap["stage_latency_ms"]
        assert set(stages) == {
            "shrink", "admission", "batch_window", "kernel", "request",
        }
        for name in ("kernel", "request"):
            assert stages[name]["count"] == 4, name
        parts = sum(
            stages[n]["mean_ms"]
            for n in ("shrink", "admission", "batch_window", "kernel")
        )
        e2e = stages["request"]["mean_ms"]
        # stage sum accounts for the request mean up to delivery slack
        assert parts <= e2e * 1.05 + 0.5
        assert e2e <= parts + 50.0  # loose: scheduling noise

    def test_trace_spans_only_when_enabled(self):
        from repro.data import text_surrogate
        from repro.serve.service import RecoilService

        data = text_surrogate(10_000, target_entropy=5.29, seed=2)
        with RecoilService() as service:
            service.put_asset("asset", data, num_splits=32)
            req = service.submit("asset", 4)
            req.result(60)
            assert trace.snapshot() == []  # disabled: nothing recorded
            trace.enable()
            req = service.submit("asset", 4)
            req.result(60)
            names = {s.name for s in trace.drain()}
        assert "serve.request" in names
        assert "serve.kernel" in names
