"""Tests for the Conventional and Single-Thread baselines (§2.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ConventionalCodec, SingleThreadCodec
from repro.baselines.conventional import partition_bounds
from repro.data import synthesize_latents
from repro.errors import ContainerError, EncodeError


class TestPartitionBounds:
    def test_even_split(self):
        bounds = partition_bounds(100, 4)
        assert bounds == [(0, 25), (25, 50), (50, 75), (75, 100)]

    def test_uneven_split(self):
        bounds = partition_bounds(10, 3)
        assert bounds == [(0, 4), (4, 8), (8, 10)]
        assert bounds[-1][1] == 10

    def test_more_partitions_than_symbols(self):
        bounds = partition_bounds(3, 10)
        assert len(bounds) == 3
        assert all(e - s == 1 for s, e in bounds)

    def test_single_partition(self):
        assert partition_bounds(42, 1) == [(0, 42)]

    def test_zero_symbols(self):
        assert partition_bounds(0, 4) == [(0, 0)]

    def test_bad_partitions(self):
        with pytest.raises(EncodeError):
            partition_bounds(10, 0)


class TestConventionalRoundtrip:
    @pytest.mark.parametrize("partitions", [1, 2, 7, 16, 100])
    def test_roundtrip(self, skewed_bytes, provider11, partitions):
        codec = ConventionalCodec(provider11)
        blob = codec.compress(skewed_bytes, partitions)
        out = codec.decompress(blob)
        assert np.array_equal(out, skewed_bytes)

    def test_container_roundtrip_fields(self, skewed_bytes, provider11):
        codec = ConventionalCodec(provider11)
        enc = codec.encode(skewed_bytes, 8)
        blob = codec.build_container(enc)
        back = codec.parse_container(blob)
        assert back.num_partitions == 8
        assert back.num_symbols == len(skewed_bytes)
        assert np.array_equal(back.word_offsets, enc.word_offsets)
        assert np.array_equal(back.final_states, enc.final_states)
        assert np.array_equal(back.words, enc.words)

    def test_bad_magic(self, skewed_bytes, provider11):
        codec = ConventionalCodec(provider11)
        blob = codec.compress(skewed_bytes, 2)
        with pytest.raises(ContainerError):
            codec.parse_container(b"ZZZZ" + blob[4:])

    def test_adaptive_partitions(self):
        """Conventional must also handle per-index models (the image
        comparison in Table 6)."""
        plane = synthesize_latents(20_000, seed=21)
        codec = ConventionalCodec(plane.provider)
        blob = codec.compress(plane.symbols, 8)
        out = codec.decompress(blob)
        assert np.array_equal(out, plane.symbols)

    def test_overhead_linear_in_partitions(self, skewed_bytes, provider11):
        """The Figure-3 effect: ~constant bytes per extra partition."""
        codec = ConventionalCodec(provider11)
        s1 = len(codec.compress(skewed_bytes, 1))
        s20 = len(codec.compress(skewed_bytes, 20))
        s40 = len(codec.compress(skewed_bytes, 40))
        per_part_a = (s20 - s1) / 19
        per_part_b = (s40 - s20) / 20
        # Within 2x of each other and in the states+offset ballpark.
        assert 60 < per_part_a < 250
        assert 0.5 < per_part_a / per_part_b < 2.0

    def test_decode_stats(self, skewed_bytes, provider11):
        codec = ConventionalCodec(provider11)
        enc = codec.encode(skewed_bytes, 8)
        out, stats, workload = codec.decode(enc)
        assert np.array_equal(out, skewed_bytes)
        assert workload.num_tasks == 8
        # Conventional has NO sync overhead — that is Recoil's price.
        assert workload.overhead_symbols == 0
        assert stats.symbols_decoded == len(skewed_bytes)

    def test_empty_input(self, provider11):
        codec = ConventionalCodec(provider11)
        blob = codec.compress(np.array([], dtype=np.uint8), 4)
        out = codec.decompress(blob)
        assert len(out) == 0


class TestSingleThread:
    def test_is_one_partition(self, skewed_bytes, provider11):
        st = SingleThreadCodec(provider11)
        conv = ConventionalCodec(provider11)
        assert st.compress(skewed_bytes) == conv.compress(skewed_bytes, 1)

    def test_multi_partition_rejected(self, skewed_bytes, provider11):
        with pytest.raises(ValueError):
            SingleThreadCodec(provider11).compress(skewed_bytes, 4)

    def test_serial_decode_matches(self, skewed_bytes, provider11):
        st = SingleThreadCodec(provider11)
        blob = st.compress(skewed_bytes)
        assert np.array_equal(st.decompress_serial(blob), skewed_bytes)
        assert np.array_equal(st.decompress(blob), skewed_bytes)
