"""Tests for adaptive model providers and the Gaussian bank."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.rans.adaptive import (
    AdaptiveModelProvider,
    GaussianModelBank,
    IndexedModelProvider,
    StaticModelProvider,
)
from repro.rans.interleaved import InterleavedDecoder, InterleavedEncoder
from repro.rans.model import SymbolModel


@pytest.fixture(scope="module")
def bank():
    return GaussianModelBank(12, alphabet_size=2048, num_scales=8)


class TestStaticProvider:
    def test_basics(self, model11, provider11):
        assert provider11.is_static
        assert provider11.num_models == 1
        assert provider11.quant_bits == 11
        assert provider11.alphabet_size == 256
        assert provider11.model_for_index(123) is model11

    def test_ids_all_zero(self, provider11):
        ids = provider11.model_ids_for_range(1, 100)
        assert np.all(ids == 0)
        assert len(ids) == 99

    def test_gather(self, provider11, model11, skewed_bytes):
        f, cdf = provider11.gather_freq_cdf(skewed_bytes[:100])
        assert np.array_equal(f, model11.freqs[skewed_bytes[:100]])
        assert np.array_equal(cdf, model11.cdf[skewed_bytes[:100]])

    def test_gather_zero_freq_rejected(self, provider11, model11):
        if not np.any(model11.freqs == 0):
            pytest.skip("full support")
        missing = int(np.flatnonzero(model11.freqs == 0)[0])
        with pytest.raises(ModelError):
            provider11.gather_freq_cdf(np.array([missing]))

    def test_table_bytes_positive(self, provider11):
        assert provider11.table_bytes() > 0


class TestIndexedProvider:
    def test_mixed_quant_rejected(self, model11, model16):
        with pytest.raises(ModelError):
            IndexedModelProvider([model11, model16], np.zeros(4, dtype=int))

    def test_mixed_alphabet_rejected(self, model11):
        other = SymbolModel.uniform(128, 11)
        with pytest.raises(ModelError):
            IndexedModelProvider([model11, other], np.zeros(4, dtype=int))

    def test_id_out_of_range_rejected(self, model11):
        with pytest.raises(ModelError):
            IndexedModelProvider([model11], np.array([1]))

    def test_range_outside_sequence_rejected(self, model11):
        p = IndexedModelProvider([model11], np.zeros(10, dtype=int))
        with pytest.raises(ModelError):
            p.model_ids_for_range(1, 12)
        with pytest.raises(ModelError):
            p.model_ids_for_range(0, 5)

    def test_per_index_mapping(self, model11):
        m2 = SymbolModel.uniform(256, 11)
        ids = np.array([0, 1, 1, 0])
        p = IndexedModelProvider([model11, m2], ids)
        assert not p.is_static
        assert p.model_for_index(1) is model11
        assert p.model_for_index(2) is m2
        assert np.array_equal(p.model_ids_for_range(2, 4), [1, 1])

    def test_tables_shapes(self, model11):
        m2 = SymbolModel.uniform(256, 11)
        p = IndexedModelProvider([model11, m2], np.array([0, 1]))
        assert p.freq_table.shape == (2, 256)
        assert p.cdf_table.shape == (2, 257)
        assert p.lut_table.shape == (2, 2**11)

    def test_empty_models_rejected(self):
        with pytest.raises(ModelError):
            AdaptiveModelProvider([])


class TestGaussianBank:
    def test_models_share_geometry(self, bank):
        models = bank.models
        assert len(models) == 8
        for m in models:
            assert m.quant_bits == 12
            assert m.alphabet_size == 2048
            assert int(m.freqs.sum()) == 2**12

    def test_narrow_scale_concentrates_mass(self, bank):
        narrow = bank.models[0]
        center = bank.center
        # Smallest scale: nearly all mass on the center symbol.
        assert narrow.freqs[center] > 0.9 * 2**12

    def test_wide_scale_spreads_mass(self, bank):
        wide = bank.models[-1]
        assert (wide.freqs > 0).sum() > 100

    def test_entropy_monotone_in_scale(self, bank):
        ent = [m.entropy_bits_per_symbol for m in bank.models]
        assert all(a <= b + 1e-9 for a, b in zip(ent, ent[1:]))

    def test_scale_to_id_clipping(self, bank):
        ids = bank.scale_to_id(np.array([1e-9, 1e9]))
        assert ids[0] == 0
        assert ids[1] == len(bank.scales) - 1

    def test_provider_roundtrip(self, bank):
        r = np.random.default_rng(6)
        ids = r.integers(0, 8, 3_000)
        provider = bank.provider_for_ids(ids)
        slots = r.integers(0, 2**12, 3_000)
        syms = np.empty(3_000, dtype=np.uint16)
        for mid in range(8):
            mask = ids == mid
            syms[mask] = bank.models[mid].slot_to_symbol[slots[mask]]
        enc = InterleavedEncoder(provider).encode(syms, record_events=True)
        out = InterleavedDecoder(provider).decode(
            enc.words, enc.final_states, len(syms)
        )
        assert np.array_equal(out, syms)

    def test_rate_tracks_model_entropy(self, bank):
        """Coded size within a few % of the per-index model entropy."""
        r = np.random.default_rng(8)
        ids = np.repeat(np.arange(8), 2000)
        provider = bank.provider_for_ids(ids)
        slots = r.integers(0, 2**12, len(ids))
        syms = np.empty(len(ids), dtype=np.uint16)
        for mid in range(8):
            mask = ids == mid
            syms[mask] = bank.models[mid].slot_to_symbol[slots[mask]]
        enc = InterleavedEncoder(provider).encode(syms)
        ideal_bits = sum(
            2000 * bank.models[m].entropy_bits_per_symbol for m in range(8)
        )
        actual_bits = 16 * enc.num_words
        assert actual_bits < ideal_bits * 1.05 + 32 * 32

    def test_provider_for_scales(self, bank):
        p = bank.provider_for_scales(np.array([0.2, 5.0, 100.0]))
        ids = p.ids
        assert ids[0] < ids[1] < ids[2]
