"""End-to-end tests for the Recoil 3-phase parallel decoder (§4.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decoder import RecoilDecoder, build_thread_tasks
from repro.core.encoder import RecoilEncoder
from repro.errors import DecodeError
from repro.rans.interleaved import InterleavedDecoder
from repro.rans.model import SymbolModel


@pytest.fixture(scope="module")
def encoded64(skewed_bytes, model11):
    return RecoilEncoder(model11).encode(skewed_bytes, num_threads=64)


class TestRecoilRoundtrip:
    @pytest.mark.parametrize("threads", [1, 2, 3, 8, 16, 64])
    def test_roundtrip_at_every_parallelism(
        self, encoded64, skewed_bytes, model11, threads
    ):
        """The same stream decodes identically at every thread count
        (the decoder-adaptive scalability core claim)."""
        dec = RecoilDecoder(model11)
        res = dec.decode(
            encoded64.words,
            encoded64.final_states,
            encoded64.metadata.combine(threads),
        )
        assert np.array_equal(res.symbols, skewed_bytes)

    def test_matches_plain_interleaved_decoder(
        self, encoded64, skewed_bytes, model11
    ):
        """Recoil never modifies the bitstream (§1 compatibility):
        a standard interleaved decoder reads the same payload."""
        plain = InterleavedDecoder(model11).decode(
            encoded64.words, encoded64.final_states, encoded64.num_symbols
        )
        assert np.array_equal(plain, skewed_bytes)

    def test_dropping_any_single_entry_still_decodes(
        self, encoded64, skewed_bytes, model11
    ):
        """Combining = dropping entries; ANY subset must decode (we
        drop each entry in turn on a thinned metadata)."""
        md = encoded64.metadata.combine(9)
        dec = RecoilDecoder(model11)
        for k in range(len(md.entries)):
            entries = [e for i, e in enumerate(md.entries) if i != k]
            thinned = type(md)(
                md.num_symbols, md.num_words, md.lanes, entries
            )
            res = dec.decode(
                encoded64.words, encoded64.final_states, thinned
            )
            assert np.array_equal(res.symbols, skewed_bytes), f"drop {k}"

    def test_max_threads_combines_clientside(
        self, encoded64, skewed_bytes, model11
    ):
        dec = RecoilDecoder(model11)
        res = dec.decode(
            encoded64.words,
            encoded64.final_states,
            encoded64.metadata,
            max_threads=4,
        )
        assert np.array_equal(res.symbols, skewed_bytes)
        assert res.workload.num_tasks == 4

    def test_lane_mismatch_rejected(self, encoded64, model11):
        dec = RecoilDecoder(model11, lanes=16)
        with pytest.raises(DecodeError):
            dec.decode(
                encoded64.words, encoded64.final_states, encoded64.metadata
            )

    def test_n16_roundtrip(self, skewed_bytes, model16):
        enc = RecoilEncoder(model16).encode(skewed_bytes, num_threads=32)
        res = RecoilDecoder(model16).decode(
            enc.words, enc.final_states, enc.metadata
        )
        assert np.array_equal(res.symbols, skewed_bytes)

    @pytest.mark.parametrize("n_sym", [0, 1, 33, 700])
    def test_tiny_inputs(self, skewed_bytes, model11, n_sym):
        data = skewed_bytes[:n_sym]
        enc = RecoilEncoder(model11).encode(data, num_threads=8)
        res = RecoilDecoder(model11).decode(
            enc.words, enc.final_states, enc.metadata
        )
        assert np.array_equal(res.symbols, data)


class TestThreePhaseAccounting:
    def test_sync_overhead_counted(self, encoded64, model11):
        """Sync sections are walked twice; the syncing thread decodes
        only its already-activated lanes there, the crossing thread
        decodes all of them.  So actual decodes sit strictly between
        N and N + total sync length, and the *walk* overhead equals
        the sync sections exactly."""
        res = RecoilDecoder(model11).decode(
            encoded64.words, encoded64.final_states, encoded64.metadata
        )
        n = encoded64.num_symbols
        sync = encoded64.metadata.sync_overhead_symbols()
        assert sync > 0
        assert n < res.engine_stats.symbols_decoded <= n + sync
        assert res.workload.overhead_symbols == sync

    def test_combining_reduces_overhead(self, encoded64, model11):
        dec = RecoilDecoder(model11)
        full = dec.decode(
            encoded64.words, encoded64.final_states, encoded64.metadata
        )
        small = dec.decode(
            encoded64.words,
            encoded64.final_states,
            encoded64.metadata.combine(4),
        )
        assert (
            small.workload.overhead_symbols
            < full.workload.overhead_symbols
        )

    def test_words_read_equals_stream(self, encoded64, model11):
        """Every stream word is read at least once; sync-section words
        are read twice (by the syncing and crossing threads)."""
        res = RecoilDecoder(model11).decode(
            encoded64.words, encoded64.final_states, encoded64.metadata
        )
        assert res.engine_stats.words_read >= len(encoded64.words)
        assert res.engine_stats.words_read <= 2 * len(encoded64.words)

    def test_task_construction(self, encoded64):
        tasks = build_thread_tasks(
            encoded64.metadata,
            len(encoded64.words),
            encoded64.final_states,
        )
        assert len(tasks) == encoded64.metadata.num_threads
        # Exactly the first task checks terminal conditions; exactly
        # the last runs from the transmitted final states.
        assert tasks[0].check_terminal
        assert tasks[-1].initial_states is not None
        assert all(t.initial_states is None for t in tasks[:-1])
        # Commit ranges tile [1, N].
        nxt = 1
        for t in tasks:
            assert t.commit_lo == nxt
            nxt = t.commit_hi + 1
        assert nxt == encoded64.num_symbols + 1


class TestCorruptionDetection:
    def test_truncated_payload(self, encoded64, model11):
        with pytest.raises(DecodeError):
            RecoilDecoder(model11).decode(
                encoded64.words[: len(encoded64.words) // 3],
                encoded64.final_states,
                encoded64.metadata,
            )

    def test_corrupt_final_states(self, encoded64, skewed_bytes, model11):
        bad = encoded64.final_states.copy()
        bad[0] ^= 0x1234
        try:
            res = RecoilDecoder(model11).decode(
                encoded64.words, bad, encoded64.metadata
            )
            # If no exception, the output must at least be wrong —
            # garbage in the last thread's lane-0 symbols.
            assert not np.array_equal(res.symbols, skewed_bytes)
        except DecodeError:
            pass

    def test_corrupt_entry_state_detected_or_wrong(
        self, encoded64, skewed_bytes, model11
    ):
        md = encoded64.metadata
        entry = md.entries[len(md.entries) // 2]
        bad_states = entry.lane_states.copy()
        bad_states[5] ^= 0x0F0F
        bad_entry = type(entry)(
            entry.word_offset, entry.lane_indices, bad_states
        )
        entries = list(md.entries)
        entries[len(md.entries) // 2] = bad_entry
        bad_md = type(md)(md.num_symbols, md.num_words, md.lanes, entries)
        try:
            res = RecoilDecoder(model11).decode(
                encoded64.words, encoded64.final_states, bad_md
            )
            assert not np.array_equal(res.symbols, skewed_bytes)
        except DecodeError:
            pass
