"""Tests for real-thread pooled decoding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decoder import build_thread_tasks
from repro.core.encoder import RecoilEncoder
from repro.errors import ParallelismError
from repro.parallel.executor import decode_with_pool


@pytest.fixture(scope="module")
def encoded(skewed_bytes, model11):
    return RecoilEncoder(model11).encode(skewed_bytes, num_threads=24)


@pytest.fixture(scope="module")
def tasks(encoded):
    return build_thread_tasks(
        encoded.metadata, len(encoded.words), encoded.final_states
    )


class TestPoolDecode:
    @pytest.mark.parametrize("workers", [1, 2, 4, 7])
    def test_roundtrip(self, encoded, tasks, provider11, skewed_bytes, workers):
        res = decode_with_pool(
            provider11, 32, encoded.words, tasks,
            encoded.num_symbols, np.uint8, workers,
        )
        assert np.array_equal(res.symbols, skewed_bytes)
        assert res.workers == min(workers, len(tasks))

    def test_stats_cover_all_work(self, encoded, tasks, provider11):
        res = decode_with_pool(
            provider11, 32, encoded.words, tasks,
            encoded.num_symbols, np.uint8, 4,
        )
        assert len(res.per_worker_stats) == res.workers
        assert res.total_symbols_decoded >= encoded.num_symbols

    def test_more_workers_than_tasks(self, encoded, tasks, provider11,
                                     skewed_bytes):
        res = decode_with_pool(
            provider11, 32, encoded.words, tasks,
            encoded.num_symbols, np.uint8, 100,
        )
        assert res.workers == len(tasks)
        assert np.array_equal(res.symbols, skewed_bytes)

    def test_zero_workers_rejected(self, encoded, tasks, provider11):
        with pytest.raises(ParallelismError):
            decode_with_pool(
                provider11, 32, encoded.words, tasks,
                encoded.num_symbols, np.uint8, 0,
            )
