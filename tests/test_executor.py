"""Tests for real-thread pooled decoding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decoder import build_thread_tasks
from repro.core.encoder import RecoilEncoder
from repro.errors import ParallelismError
from repro.parallel.executor import decode_with_pool


@pytest.fixture(scope="module")
def encoded(skewed_bytes, model11):
    return RecoilEncoder(model11).encode(skewed_bytes, num_threads=24)


@pytest.fixture(scope="module")
def tasks(encoded):
    return build_thread_tasks(
        encoded.metadata, len(encoded.words), encoded.final_states
    )


class TestPoolDecode:
    @pytest.mark.parametrize("workers", [1, 2, 4, 7])
    def test_roundtrip(self, encoded, tasks, provider11, skewed_bytes, workers):
        res = decode_with_pool(
            provider11, 32, encoded.words, tasks,
            encoded.num_symbols, np.uint8, workers,
        )
        assert np.array_equal(res.symbols, skewed_bytes)
        assert res.workers == min(workers, len(tasks))

    def test_stats_cover_all_work(self, encoded, tasks, provider11):
        res = decode_with_pool(
            provider11, 32, encoded.words, tasks,
            encoded.num_symbols, np.uint8, 4,
        )
        assert len(res.per_worker_stats) == res.workers
        assert res.total_symbols_decoded >= encoded.num_symbols

    def test_more_workers_than_tasks(self, encoded, tasks, provider11,
                                     skewed_bytes):
        res = decode_with_pool(
            provider11, 32, encoded.words, tasks,
            encoded.num_symbols, np.uint8, 100,
        )
        assert res.workers == len(tasks)
        assert np.array_equal(res.symbols, skewed_bytes)

    def test_zero_workers_rejected(self, encoded, tasks, provider11):
        with pytest.raises(ParallelismError):
            decode_with_pool(
                provider11, 32, encoded.words, tasks,
                encoded.num_symbols, np.uint8, 0,
            )

    def test_negative_workers_rejected(self, encoded, tasks, provider11):
        with pytest.raises(ParallelismError):
            decode_with_pool(
                provider11, 32, encoded.words, tasks,
                encoded.num_symbols, np.uint8, -3,
            )

    @pytest.mark.parametrize("workers", [1, 3, 8])
    def test_round_robin_strategy_roundtrip(
        self, encoded, tasks, provider11, skewed_bytes, workers
    ):
        res = decode_with_pool(
            provider11, 32, encoded.words, tasks,
            encoded.num_symbols, np.uint8, workers,
            strategy="round_robin",
        )
        assert np.array_equal(res.symbols, skewed_bytes)
        assert res.workers == min(workers, len(tasks))

    def test_round_robin_deals_cyclically(self, tasks):
        from repro.parallel.costmodel import assign_tasks

        buckets = assign_tasks(tasks, 3, strategy="round_robin")
        assert [len(b) for b in buckets] == [
            len(tasks[i::3]) for i in range(3)
        ]
        assert buckets[1][0] is tasks[1]

    def test_unknown_strategy_rejected(self, encoded, tasks, provider11):
        with pytest.raises(ValueError):
            decode_with_pool(
                provider11, 32, encoded.words, tasks,
                encoded.num_symbols, np.uint8, 2,
                strategy="alphabetical",
            )
