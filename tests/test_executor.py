"""Tests for pooled decoding on real threads and shard processes.

One parametrized suite covers both backends of
:func:`repro.parallel.executor.decode_with_pool` — every behaviour the
thread pool honors (bit-identical output, stats coverage, edge cases:
zero tasks, a single task, more workers than tasks) must hold verbatim
for the sharded process backend (DESIGN.md §14).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decoder import build_thread_tasks
from repro.core.encoder import RecoilEncoder
from repro.errors import ParallelismError
from repro.parallel import compiled
from repro.parallel.executor import decode_with_pool
from repro.parallel.shards import sharding_available

from conftest import needs_compiled

needs_shm = pytest.mark.skipif(
    not sharding_available(), reason="no shared memory on this host"
)
BACKENDS = [
    "thread",
    pytest.param("process", marks=needs_shm),
    pytest.param("thread+compiled", marks=needs_compiled),
    pytest.param(
        "process+compiled", marks=[needs_shm, needs_compiled]
    ),
]


@pytest.fixture(scope="module")
def encoded(skewed_bytes, model11):
    return RecoilEncoder(model11).encode(skewed_bytes, num_threads=24)


@pytest.fixture(scope="module")
def tasks(encoded):
    return build_thread_tasks(
        encoded.metadata, len(encoded.words), encoded.final_states
    )


@pytest.fixture(scope="module")
def single_task(encoded):
    md = encoded.metadata.combine(1)
    return build_thread_tasks(md, len(encoded.words), encoded.final_states)


@pytest.mark.parametrize("backend", BACKENDS)
class TestPoolDecode:
    @pytest.mark.parametrize("workers", [1, 2, 4, 7])
    def test_roundtrip(
        self, encoded, tasks, provider11, skewed_bytes, workers, backend
    ):
        res = decode_with_pool(
            provider11, 32, encoded.words, tasks,
            encoded.num_symbols, np.uint8, workers, backend=backend,
        )
        assert np.array_equal(res.symbols, skewed_bytes)
        assert res.workers == min(workers, len(tasks))
        pool, kernel = compiled.split_backend(backend)
        assert res.backend == pool
        assert res.kernel == kernel

    def test_stats_cover_all_work(self, encoded, tasks, provider11, backend):
        res = decode_with_pool(
            provider11, 32, encoded.words, tasks,
            encoded.num_symbols, np.uint8, 4, backend=backend,
        )
        assert len(res.per_worker_stats) == res.workers
        assert res.total_symbols_decoded >= encoded.num_symbols

    def test_more_workers_than_tasks(self, encoded, tasks, provider11,
                                     skewed_bytes, backend):
        res = decode_with_pool(
            provider11, 32, encoded.words, tasks,
            encoded.num_symbols, np.uint8, 100, backend=backend,
        )
        assert res.workers == len(tasks)
        assert np.array_equal(res.symbols, skewed_bytes)

    def test_single_task(self, encoded, single_task, provider11,
                         skewed_bytes, backend):
        assert len(single_task) == 1
        res = decode_with_pool(
            provider11, 32, encoded.words, single_task,
            encoded.num_symbols, np.uint8, 4, backend=backend,
        )
        assert res.workers == 1
        assert np.array_equal(res.symbols, skewed_bytes)

    def test_zero_tasks(self, encoded, provider11, backend):
        res = decode_with_pool(
            provider11, 32, encoded.words, [], 0, np.uint8, 4,
            backend=backend,
        )
        assert res.workers == 0
        assert res.per_worker_stats == []
        assert res.symbols.shape == (0,)

    def test_zero_workers_rejected(self, encoded, tasks, provider11, backend):
        with pytest.raises(ParallelismError):
            decode_with_pool(
                provider11, 32, encoded.words, tasks,
                encoded.num_symbols, np.uint8, 0, backend=backend,
            )

    def test_negative_workers_rejected(self, encoded, tasks, provider11,
                                       backend):
        with pytest.raises(ParallelismError):
            decode_with_pool(
                provider11, 32, encoded.words, tasks,
                encoded.num_symbols, np.uint8, -3, backend=backend,
            )

    @pytest.mark.parametrize("workers", [1, 3, 8])
    def test_round_robin_strategy_roundtrip(
        self, encoded, tasks, provider11, skewed_bytes, workers, backend
    ):
        res = decode_with_pool(
            provider11, 32, encoded.words, tasks,
            encoded.num_symbols, np.uint8, workers,
            strategy="round_robin", backend=backend,
        )
        assert np.array_equal(res.symbols, skewed_bytes)
        assert res.workers == min(workers, len(tasks))

    def test_unknown_strategy_rejected(self, encoded, tasks, provider11,
                                       backend):
        with pytest.raises(ValueError):
            decode_with_pool(
                provider11, 32, encoded.words, tasks,
                encoded.num_symbols, np.uint8, 2,
                strategy="alphabetical", backend=backend,
            )


class TestBackendSelection:
    def test_round_robin_deals_cyclically(self, tasks):
        from repro.parallel.costmodel import assign_tasks

        buckets = assign_tasks(tasks, 3, strategy="round_robin")
        assert [len(b) for b in buckets] == [
            len(tasks[i::3]) for i in range(3)
        ]
        assert buckets[1][0] is tasks[1]

    def test_unknown_backend_rejected(self, encoded, tasks, provider11):
        with pytest.raises(ParallelismError):
            decode_with_pool(
                provider11, 32, encoded.words, tasks,
                encoded.num_symbols, np.uint8, 2, backend="gpu",
            )

    @needs_shm
    def test_sharded_strategy_alias(self, encoded, tasks, provider11,
                                    skewed_bytes):
        res = decode_with_pool(
            provider11, 32, encoded.words, tasks,
            encoded.num_symbols, np.uint8, 4, strategy="sharded",
        )
        assert res.backend == "process"
        assert np.array_equal(res.symbols, skewed_bytes)

    def test_process_falls_back_without_shared_memory(
        self, encoded, tasks, provider11, skewed_bytes, monkeypatch
    ):
        from repro.parallel import shards

        monkeypatch.setattr(shards, "_AVAILABLE", False)
        res = decode_with_pool(
            provider11, 32, encoded.words, tasks,
            encoded.num_symbols, np.uint8, 4, backend="process",
        )
        assert res.backend == "thread"
        assert np.array_equal(res.symbols, skewed_bytes)
