"""Network front-end: wire roundtrips, hostile clients, drain, chaos.

The server's contract (DESIGN.md §16): every response that completes
is bit-identical to the reference decode, every failure is a *typed*
wire error or a counted kill — never a crash, never a hang, never a
leaked socket or shared-memory segment — under slow-loris drips,
never-reading peers, kill -9'd clients, overload, and injected
``net.*`` faults.
"""

from __future__ import annotations

import contextlib
import os
import socket
import threading
import time

import numpy as np
import pytest

from repro import faults
from repro.data import text_surrogate
from repro.errors import AdmissionError, ProtocolError, ServeError
from repro.serve import NetConfig, NetServer, RecoilClient, RecoilService
from repro.serve import protocol

SYMBOLS = 20_000
SPLITS = 32


@pytest.fixture(autouse=True)
def _disarm():
    yield
    faults.reset()


@pytest.fixture(scope="module")
def payload():
    return text_surrogate(SYMBOLS, target_entropy=5.29, seed=11)


@pytest.fixture(scope="module")
def service(payload):
    with RecoilService() as svc:
        svc.put_asset("a", payload, num_splits=SPLITS)
        yield svc


def _server(service, **overrides) -> NetServer:
    config = NetConfig(port=0, **overrides)
    return NetServer(service, config).start()


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError("closed")
        buf += chunk
    return bytes(buf)


def _recv_frame(sock: socket.socket) -> tuple[int, bytes]:
    header = _recv_exact(sock, protocol.HEADER_BYTES)
    ftype, length = protocol.parse_header(header, protocol.RESPONSE_TYPES)
    return ftype, _recv_exact(sock, length) if length else b""


def _wait_closed(sock: socket.socket, timeout: float = 5.0) -> bool:
    """True iff the server closes ``sock`` within ``timeout``."""
    sock.settimeout(timeout)
    try:
        return sock.recv(1) == b""
    except (TimeoutError, ConnectionError, OSError):
        return True


class TestRoundtrips:
    def test_all_operations_bit_identical(self, service, payload):
        from repro.core import recoil_decompress

        with _server(service) as server:
            host, port = server.address
            with RecoilClient(host, port, timeout_s=30) as client:
                assert client.ping(b"probe") == b"probe"
                assert client.ping() == b""
                out = client.decompress("a", 4)
                assert np.array_equal(out, payload)
                blob = client.serve("a", 4)
                assert np.array_equal(recoil_decompress(blob), payload)
                assert client.put_container("net-put", blob) == SYMBOLS
                again = client.decompress("net-put", 4)
                assert np.array_equal(again, payload)
                snap = client.metrics()
                assert snap["network"]["connections"]["active"] == 1

    def test_many_requests_one_connection(self, service, payload):
        with _server(service) as server:
            host, port = server.address
            with RecoilClient(host, port, timeout_s=30) as client:
                for cap in (1, 4, 16, 4, 1):
                    assert np.array_equal(
                        client.decompress("a", cap), payload
                    )
            # The server records requests.ok *after* the final sendall,
            # so the client can observe its response a beat before the
            # counter lands — poll briefly instead of racing it.
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if server.metrics.snapshot()["requests"]["ok"] == 5:
                    break
                time.sleep(0.01)
            snap = server.metrics.snapshot()
        assert snap["connections"]["opened"] == 1
        assert snap["requests"]["ok"] == 5
        assert snap["requests"]["failed"] == 0

    def test_concurrent_clients_bit_identical(self, service, payload):
        results: list[np.ndarray | None] = [None] * 8
        with _server(service) as server:
            host, port = server.address

            def hit(i: int) -> None:
                with RecoilClient(host, port, timeout_s=60) as client:
                    results[i] = client.decompress("a", 1 + i % 3)

            threads = [
                threading.Thread(target=hit, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
        for out in results:
            assert out is not None and np.array_equal(out, payload)

    def test_unknown_asset_typed_error_connection_survives(
        self, service, payload
    ):
        with _server(service) as server:
            host, port = server.address
            with RecoilClient(host, port, timeout_s=30) as client:
                with pytest.raises(ServeError):
                    client.serve("no-such-asset", 4)
                # Same connection keeps working after the typed error.
                assert np.array_equal(client.decompress("a", 4), payload)

    def test_large_streamed_response(self, service):
        big = text_surrogate(120_000, target_entropy=5.29, seed=3)
        service.put_asset("big", big, num_splits=SPLITS)
        with _server(service, chunk_bytes=4096) as server:
            host, port = server.address
            with RecoilClient(host, port, timeout_s=60) as client:
                assert np.array_equal(client.decompress("big", 8), big)


class TestDeadlines:
    def test_slow_loris_killed(self, service):
        with _server(service, read_timeout_s=0.3) as server:
            host, port = server.address
            sock = socket.create_connection((host, port), timeout=5)
            try:
                sock.sendall(protocol.MAGIC + bytes([protocol.OP_PING]))
                # ... and never send the rest of the header.
                assert _wait_closed(sock, timeout=5.0)
            finally:
                sock.close()
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if server.metrics.snapshot()["deadline_kills"]["read"]:
                    break
                time.sleep(0.01)
            snap = server.metrics.snapshot()
        assert snap["deadline_kills"]["read"] == 1
        assert snap["connections"]["active"] == 0

    def test_idle_connection_killed(self, service):
        with _server(service, idle_timeout_s=0.2) as server:
            host, port = server.address
            sock = socket.create_connection((host, port), timeout=5)
            try:
                assert _wait_closed(sock, timeout=5.0)
            finally:
                sock.close()

    def test_slow_reader_write_killed(self, service):
        big = text_surrogate(200_000, target_entropy=5.29, seed=5)
        service.put_asset("wide", big, num_splits=SPLITS)
        with _server(
            service, write_timeout_s=0.5, send_buffer_bytes=8192
        ) as server:
            host, port = server.address
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            try:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
                sock.settimeout(10)
                sock.connect((host, port))
                sock.sendall(protocol.encode_decode_request("wide", 4))
                # Read nothing: the server's sendall must wedge on the
                # full buffers and the write deadline must kill us.
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    if server.metrics.snapshot()["deadline_kills"]["write"]:
                        break
                    time.sleep(0.02)
            finally:
                sock.close()
            snap = server.metrics.snapshot()
        assert snap["deadline_kills"]["write"] == 1


class TestShedding:
    def test_over_cap_connection_gets_retry_after(self, service, payload):
        with _server(service, max_connections=1) as server:
            host, port = server.address
            holder = socket.create_connection((host, port), timeout=5)
            try:
                # Wait for the holder to be registered.
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline:
                    if server.active_connections == 1:
                        break
                    time.sleep(0.01)
                extra = socket.create_connection((host, port), timeout=5)
                try:
                    extra.settimeout(5)
                    ftype, body = _recv_frame(extra)
                    assert ftype == protocol.ST_RETRY_AFTER
                    assert 0 < protocol.parse_retry_after(body) <= 3600
                    assert _wait_closed(extra)
                finally:
                    extra.close()
            finally:
                holder.close()
            snap = server.metrics.snapshot()
        assert snap["connections"]["rejected"] == 1
        assert snap["retry_afters_sent"] >= 1

    def test_client_backs_off_then_gives_up(self, service):
        with _server(service, max_connections=1) as server:
            host, port = server.address
            holder = socket.create_connection((host, port), timeout=5)
            try:
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline:
                    if server.active_connections == 1:
                        break
                    time.sleep(0.01)
                client = RecoilClient(
                    host,
                    port,
                    timeout_s=5,
                    max_retries=2,
                    backoff_base_s=0.01,
                    backoff_cap_s=0.05,
                    seed=7,
                )
                with pytest.raises(AdmissionError, match="shedding"):
                    client.ping(b"x")
                assert client.retries == 3  # max_retries + 1 attempts
            finally:
                holder.close()
            # Capacity freed: the same client succeeds now.
            assert client.ping(b"x") == b"x"
            client.close()

    def test_admission_error_maps_to_retry_after(
        self, service, payload, monkeypatch
    ):
        """Service-level backpressure on a live connection: shed
        frames until admission clears, then the request succeeds on
        the same client without surfacing an error."""
        real = service.decompress
        rejections = {"left": 2}

        def flaky(name, capacity, timeout=None):
            if rejections["left"] > 0:
                rejections["left"] -= 1
                raise AdmissionError("synthetic backpressure")
            return real(name, capacity, timeout=timeout)

        monkeypatch.setattr(service, "decompress", flaky)
        with _server(service) as server:
            host, port = server.address
            with RecoilClient(
                host,
                port,
                timeout_s=30,
                max_retries=4,
                backoff_base_s=0.01,
                seed=3,
            ) as client:
                out = client.decompress("a", 4)
            assert np.array_equal(out, payload)
            assert client.retries == 2
            snap = server.metrics.snapshot()
        assert snap["retry_afters_sent"] == 2
        assert snap["requests"]["failed"] == 2


class TestDrain:
    def test_idle_connections_drain_clean(self, service):
        with _server(service) as server:
            host, port = server.address
            socks = [
                socket.create_connection((host, port), timeout=5)
                for _ in range(3)
            ]
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if server.active_connections == 3:
                    break
                time.sleep(0.01)
            drain = server.shutdown()
            assert drain == {"clean": 3, "forced": 0}
            for sock in socks:
                assert _wait_closed(sock)
                sock.close()
            snap = server.metrics.snapshot()
            assert snap["connections"]["active"] == 0
        # Post-drain: the listener is gone.
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=1)

    def test_busy_connection_finishes_within_grace(
        self, service, payload, monkeypatch
    ):
        real = service.decompress
        started = threading.Event()

        def slow(name, capacity, timeout=None):
            started.set()
            time.sleep(0.3)
            return real(name, capacity, timeout=timeout)

        monkeypatch.setattr(service, "decompress", slow)
        with _server(service, drain_timeout_s=10) as server:
            host, port = server.address
            client = RecoilClient(host, port, timeout_s=30)
            result: list = []
            t = threading.Thread(
                target=lambda: result.append(client.decompress("a", 4))
            )
            t.start()
            assert started.wait(10)
            drain = server.shutdown()
            t.join(30)
            client.close()
        assert drain == {"clean": 1, "forced": 0}
        assert result and np.array_equal(result[0], payload)

    def test_stuck_connection_force_closed(self, service, monkeypatch):
        release = threading.Event()
        started = threading.Event()

        def wedged(name, capacity, timeout=None):
            started.set()
            release.wait(30)
            raise ServeError("wedged request aborted")

        monkeypatch.setattr(service, "decompress", wedged)
        try:
            with _server(service, drain_timeout_s=0.2) as server:
                host, port = server.address
                client = RecoilClient(host, port, timeout_s=30)
                errors: list = []

                def hit() -> None:
                    try:
                        client.decompress("a", 4)
                    except Exception as exc:  # noqa: BLE001
                        errors.append(exc)

                t = threading.Thread(target=hit)
                t.start()
                assert started.wait(10)
                drain = server.shutdown()
                assert drain == {"clean": 0, "forced": 1}
        finally:
            release.set()
        t.join(30)
        client.close()
        assert errors  # the killed client saw a connection error

    def test_shutdown_idempotent(self, service):
        server = _server(service)
        first = server.shutdown()
        second = server.shutdown()
        assert first == second


class TestFaultPoints:
    def test_net_accept_fault_sheds_connection(self, service, payload):
        with _server(service) as server:
            host, port = server.address
            with faults.inject(faults.NET_ACCEPT, nth=1):
                sock = socket.create_connection((host, port), timeout=5)
                assert _wait_closed(sock)
                sock.close()
            # The server survives: the next connection works.
            with RecoilClient(host, port, timeout_s=30) as client:
                assert np.array_equal(client.decompress("a", 4), payload)
            snap = server.metrics.snapshot()
        assert snap["transport_errors"] >= 1

    @pytest.mark.parametrize(
        "point", [faults.NET_READ, faults.NET_WRITE]
    )
    def test_net_io_fault_kills_one_connection(
        self, service, payload, point
    ):
        with _server(service) as server:
            host, port = server.address
            with faults.inject(point, nth=1) as rule:
                client = RecoilClient(host, port, timeout_s=30)
                with pytest.raises((OSError, ProtocolError)):
                    client.decompress("a", 4)
                assert rule.fires == 1
                # The client reconnects; the retry is bit-identical.
                assert np.array_equal(client.decompress("a", 4), payload)
                client.close()
            snap = server.metrics.snapshot()
        assert snap["transport_errors"] >= 1
        assert snap["requests"]["ok"] == 1

    def test_net_stall_injects_lateness_not_corruption(
        self, service, payload
    ):
        with _server(service, stall_inject_s=0.4) as server:
            host, port = server.address
            with RecoilClient(host, port, timeout_s=30) as client:
                with faults.inject(faults.NET_STALL, nth=1) as rule:
                    t0 = time.monotonic()
                    out = client.decompress("a", 4)
                    elapsed = time.monotonic() - t0
                assert rule.fires == 1
            assert np.array_equal(out, payload)
            assert elapsed >= 0.4
            snap = server.metrics.snapshot()
        assert snap["stalls_injected"] == 1


def _open_fds() -> int:
    return len(os.listdir("/proc/self/fd"))


class TestChaosStorm:
    """The PR's acceptance run: an open-loop storm of 16+ clients —
    including kill -9 and slow-reader personas — with faults armed at
    four ``net.*`` points plus ``worker.crash``, against the process
    backend.  Every surviving response is verified bit-identical by
    the load generator; afterwards nothing may be leaked."""

    def test_storm_survives_bit_identical(self):
        from repro.parallel.shards import sharding_available
        from repro.serve.loadgen import run_load_bench

        if not sharding_available():
            pytest.skip("process backend unavailable on this platform")
        # The shared shard pool (workers + pipes) outlives the bench
        # by design — warm it first so its fds land in the baseline
        # and the assertion only sees sockets the server would leak.
        from repro.parallel import shards

        shards.default_executor(2)
        fds_before = _open_fds()
        result = run_load_bench(
            symbols=12_000,
            num_assets=2,
            num_splits=SPLITS,
            rate_hz=60.0,
            duration_s=0.8,
            backend="process",
            workers=2,
            faults=(
                "net.accept:p=0.05,net.read:p=0.05,net.write:p=0.05,"
                "net.stall:p=0.1,worker.crash:nth=2"
            ),
            seed=5,
            request_timeout_s=30.0,
        )
        for label in ("clean", "faulted"):
            run = result[label]
            assert run["offered"]["requests"] >= 16
            assert run["mismatches"] == 0
            assert run["ok"] > 0
            assert "unfinished" not in run["outcomes"]
        fired = sum(r["fires"] for r in result["faults"]["rules"])
        assert fired > 0
        net = result["network_metrics"]
        assert net["connections"]["active"] == 0
        assert (
            net["connections"]["opened"] == net["connections"]["closed"]
        )
        # No leaked sockets (small slack for interpreter-internal fds).
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline and _open_fds() > fds_before:
            time.sleep(0.05)
        assert _open_fds() <= fds_before + 2
        # No leaked shared-memory segments.
        from repro.parallel.shards import _SHM_PREFIX

        shm = [
            f
            for f in os.listdir("/dev/shm")
            if f.startswith(_SHM_PREFIX)
        ] if os.path.isdir("/dev/shm") else []
        assert shm == []


class TestKilledClients:
    def test_rst_mid_response_does_not_crash(self, service, payload):
        import struct as _struct

        with _server(service) as server:
            host, port = server.address
            for _ in range(3):
                sock = socket.create_connection((host, port), timeout=5)
                sock.sendall(protocol.encode_decode_request("a", 4))
                with contextlib.suppress(OSError):
                    sock.recv(128)
                sock.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    _struct.pack("ii", 1, 0),
                )
                sock.close()  # RST: the closest thing to kill -9
            # The server still serves correct bytes afterwards.
            with RecoilClient(host, port, timeout_s=30) as client:
                assert np.array_equal(client.decompress("a", 4), payload)
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if server.metrics.snapshot()["connections"]["active"] <= 1:
                    break
                time.sleep(0.02)
            snap = server.metrics.snapshot()
        assert snap["requests"]["ok"] >= 1
