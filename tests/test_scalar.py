"""Tests for the scalar rANS reference codec (Eqs. 1-4, §3.1/Fig. 4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DecodeError, EncodeError
from repro.rans.constants import L_BOUND
from repro.rans.model import SymbolModel
from repro.rans.scalar import ScalarDecoder, ScalarEncoder


@pytest.fixture(scope="module")
def roundtrip(skewed_bytes, model11):
    enc = ScalarEncoder(model11, record_renorms=True)
    return enc.encode(skewed_bytes[:20_000])


class TestScalarRoundtrip:
    def test_full_roundtrip(self, roundtrip, skewed_bytes, model11):
        dec = ScalarDecoder(model11)
        out = dec.decode(roundtrip.words, roundtrip.final_state, 20_000)
        assert out == list(skewed_bytes[:20_000])

    def test_compression_near_entropy(self, roundtrip, model11):
        bits = 16 * len(roundtrip.words) + 32  # words + final state
        per_sym = bits / 20_000
        assert per_sym < model11.entropy_bits_per_symbol + 0.2

    def test_empty_sequence(self, model11):
        enc = ScalarEncoder(model11).encode([])
        assert enc.words == []
        assert enc.final_state == L_BOUND
        out = ScalarDecoder(model11).decode([], L_BOUND, 0)
        assert out == []

    def test_single_symbol(self, model11):
        enc = ScalarEncoder(model11).encode([0])
        out = ScalarDecoder(model11).decode(enc.words, enc.final_state, 1)
        assert out == [0]

    def test_symbol_outside_alphabet_rejected(self, model11):
        with pytest.raises(EncodeError):
            ScalarEncoder(model11).encode([256])

    def test_zero_frequency_symbol_rejected(self, model11):
        if not np.any(model11.freqs == 0):
            pytest.skip("model has full support")
        missing = int(np.flatnonzero(model11.freqs == 0)[0])
        with pytest.raises(EncodeError):
            ScalarEncoder(model11).encode([missing])

    def test_terminal_check_fires_on_truncated_stream(
        self, roundtrip, model11
    ):
        with pytest.raises(DecodeError):
            ScalarDecoder(model11).decode(
                roundtrip.words[: len(roundtrip.words) // 2],
                roundtrip.final_state,
                20_000,
            )

    def test_to_bytes(self, roundtrip):
        blob = roundtrip.to_bytes()
        assert len(blob) == 2 * roundtrip.num_words


class TestRenormRecords:
    def test_one_record_per_word(self, roundtrip):
        """b >= n makes renormalization single-step: every emitted word
        is exactly one renormalization event."""
        assert len(roundtrip.renorm_records) == roundtrip.num_words

    def test_lemma_3_1(self, roundtrip):
        """All recorded post-renorm states are below L (Lemma 3.1)."""
        assert all(r.state_after < L_BOUND for r in roundtrip.renorm_records)

    def test_records_ordered(self, roundtrip):
        positions = [r.word_position for r in roundtrip.renorm_records]
        assert positions == sorted(positions)
        indices = [r.symbol_index for r in roundtrip.renorm_records]
        assert indices == sorted(indices)

    def test_decode_from_every_20th_record(
        self, roundtrip, skewed_bytes, model11
    ):
        """Paper §3.1: decoding can start at ANY recorded point."""
        dec = ScalarDecoder(model11)
        data = list(skewed_bytes[:20_000])
        for rec in roundtrip.renorm_records[::20]:
            out = dec.decode_from_record(roundtrip.words, rec)
            assert out == data[: rec.symbol_index - 1]

    def test_partial_decode_from_record(self, roundtrip, skewed_bytes, model11):
        rec = roundtrip.renorm_records[len(roundtrip.renorm_records) // 2]
        dec = ScalarDecoder(model11)
        out = dec.decode_from_record(roundtrip.words, rec, num_symbols=100)
        expected = list(
            skewed_bytes[rec.symbol_index - 101 : rec.symbol_index - 1]
        )
        assert out == expected

    def test_too_many_symbols_from_record_rejected(self, roundtrip, model11):
        rec = roundtrip.renorm_records[0]
        with pytest.raises(DecodeError):
            ScalarDecoder(model11).decode_from_record(
                roundtrip.words, rec, num_symbols=rec.symbol_index
            )

    def test_two_thread_reassembly(self, roundtrip, skewed_bytes, model11):
        """The Figure-4 proof of concept end to end."""
        data = list(skewed_bytes[:20_000])
        rec = min(
            roundtrip.renorm_records,
            key=lambda r: abs(r.symbol_index - 10_000),
        )
        dec = ScalarDecoder(model11)
        upper = dec.decode(
            roundtrip.words,
            roundtrip.final_state,
            20_000 - (rec.symbol_index - 1),
            check_terminal=False,
        )
        lower = dec.decode_from_record(roundtrip.words, rec)
        assert lower + upper == data


@given(
    data=st.lists(st.integers(min_value=0, max_value=15), min_size=1,
                  max_size=400),
    n=st.integers(min_value=8, max_value=16),
)
@settings(max_examples=50, deadline=None)
def test_scalar_roundtrip_property(data, n):
    """Roundtrip over random alphabets, lengths, quantization levels."""
    r = np.random.default_rng(42)
    counts = r.integers(1, 100, 16)
    model = SymbolModel.from_counts(counts, n)
    enc = ScalarEncoder(model, record_renorms=True).encode(data)
    out = ScalarDecoder(model).decode(enc.words, enc.final_state, len(data))
    assert out == data
    assert all(rec.state_after < L_BOUND for rec in enc.renorm_records)
