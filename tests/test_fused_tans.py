"""Differential tests: fused tANS kernel vs the reference loops.

The fused wide-lane multians kernel (`repro.tans.fused`) must be
bit-identical to the seed implementations it replaced — output
symbols *and* synchronization stats (overlaps feed the Figure 7 cost
model).  `parallel_decode_reference`, `decode_from_reference` and
`measure_sync_length_reference` are kept in-tree exactly for these
tests.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DecodeError
from repro.tans import MultiansCodec, TansDecoder, TansEncoder, TansTable
from repro.tans.fused import (
    bit_windows,
    fused_speculative_pass,
    staged_single_decode,
)
from repro.tans.multians import (
    measure_sync_length,
    measure_sync_length_reference,
)


@pytest.fixture(scope="module")
def table12(skewed_bytes):
    return TansTable.from_data(skewed_bytes, 12, alphabet_size=256)


@pytest.fixture(scope="module")
def codec(table12):
    return MultiansCodec(table12)


@pytest.fixture(scope="module")
def blob(codec, skewed_bytes):
    return codec.compress(skewed_bytes)


class TestBitWindows:
    def test_windows_match_bit_reads(self, rng):
        payload = rng.integers(0, 256, 64).astype(np.uint8)
        bits = np.unpackbits(payload)
        win = bit_windows(payload)
        for p in (0, 1, 7, 8, 13, 300, 64 * 8 - 16):
            for nb in (1, 5, 11, 16):
                want = int(bits[p : p + nb] @ (1 << np.arange(nb)[::-1]))
                got = (int(win[p >> 3]) >> (24 - (p & 7) - nb)) & (
                    (1 << nb) - 1
                )
                assert got == want, (p, nb)

    def test_guard_windows_cover_stream_end(self):
        payload = np.array([0xFF], dtype=np.uint8)
        win = bit_windows(payload)
        # A cursor parked at the end of the stream gathers zeros.
        assert len(win) >= 3 and int(win[1]) == 0


class TestPackedDecodeEntries:
    def test_fields_roundtrip(self, table12):
        pk = table12.packed_decode_entries()
        nb = (pk >> 17) & 31
        base = pk >> 22
        mask = pk & ((1 << 17) - 1)
        assert np.array_equal(nb, table12.dec_nb)
        assert np.array_equal(base, table12.dec_base)
        assert np.array_equal(mask, (1 << table12.dec_nb.astype(np.int64)) - 1)

    def test_cached(self, table12):
        assert table12.packed_decode_entries() is table12.packed_decode_entries()


class TestSingleStreamDifferential:
    def test_staged_matches_reference(self, table12, skewed_bytes):
        enc = TansEncoder(table12).encode(skewed_bytes[:20_000])
        dec = TansDecoder(table12)
        payload = np.frombuffer(enc.payload, dtype=np.uint8)
        out_f, xf, pf = dec.decode_from(
            payload, enc.bit_count, enc.initial_state, 0, enc.num_symbols
        )
        out_r, xr, pr = dec.decode_from_reference(
            payload, enc.bit_count, enc.initial_state, 0, enc.num_symbols
        )
        assert np.array_equal(out_f, out_r)
        assert (xf, pf) == (xr, pr)

    def test_decode_engines_agree(self, table12, skewed_bytes):
        enc = TansEncoder(table12).encode(skewed_bytes[:5_000])
        dec = TansDecoder(table12)
        assert np.array_equal(
            dec.decode(enc), dec.decode(enc, engine="reference")
        )

    def test_unknown_engine_rejected(self, table12, skewed_bytes):
        enc = TansEncoder(table12).encode(skewed_bytes[:100])
        with pytest.raises(DecodeError):
            TansDecoder(table12).decode(enc, engine="simd")

    def test_mid_stream_guess_start(self, table12, skewed_bytes):
        """Speculative entry: a wrong starting state decodes garbage
        then self-synchronizes — both paths produce the same walk."""
        enc = TansEncoder(table12).encode(skewed_bytes[:10_000])
        dec = TansDecoder(table12)
        payload = np.frombuffer(enc.payload, dtype=np.uint8)
        guess = table12.table_size + 123
        out_f, xf, pf = dec.decode_from(
            payload, enc.bit_count, guess, 64, 500
        )
        out_r, xr, pr = dec.decode_from_reference(
            payload, enc.bit_count, guess, 64, 500
        )
        assert np.array_equal(out_f, out_r)
        assert (xf, pf) == (xr, pr)


class TestExhaustedBitstream:
    def test_fused_raises(self, table12, skewed_bytes):
        enc = TansEncoder(table12).encode(skewed_bytes[:2_000])
        dec = TansDecoder(table12)
        payload = np.frombuffer(enc.payload, dtype=np.uint8)
        with pytest.raises(DecodeError, match="exhausted"):
            dec.decode_from(
                payload, enc.bit_count, enc.initial_state, 0,
                enc.num_symbols + 64,
            )

    def test_reference_raises(self, table12, skewed_bytes):
        enc = TansEncoder(table12).encode(skewed_bytes[:2_000])
        dec = TansDecoder(table12)
        payload = np.frombuffer(enc.payload, dtype=np.uint8)
        with pytest.raises(DecodeError, match="exhausted"):
            dec.decode_from_reference(
                payload, enc.bit_count, enc.initial_state, 0,
                enc.num_symbols + 64,
            )

    def test_truncated_bit_count(self, table12, skewed_bytes):
        enc = TansEncoder(table12).encode(skewed_bytes[:2_000])
        dec = TansDecoder(table12)
        payload = np.frombuffer(enc.payload, dtype=np.uint8)
        with pytest.raises(DecodeError, match="exhausted"):
            dec.decode_from(
                payload, enc.bit_count // 2, enc.initial_state, 0,
                enc.num_symbols,
            )


class TestParallelDifferential:
    @pytest.mark.parametrize("threads", [1, 4, 16, 64, 256])
    def test_bit_identity(
        self, codec, blob, skewed_bytes, threads, kernel_backend
    ):
        """Fused vs reference: same symbols, same overlap stats, same
        unsynced count — across serial fallback (P=1), scalar-stitch
        widths (P<24) and wide-search widths (P>=24)."""
        engine = "fused" if kernel_backend == "numpy" else "compiled"
        out_f, st_f = codec.decompress(
            blob, num_threads=threads, engine=engine
        )
        out_r, st_r = codec.decompress(
            blob, num_threads=threads, engine="reference"
        )
        assert np.array_equal(out_f, skewed_bytes)
        assert np.array_equal(out_f, out_r)
        assert st_f.threads == st_r.threads
        assert np.array_equal(st_f.overlap_symbols, st_r.overlap_symbols)
        assert st_f.unsynced_threads == st_r.unsynced_threads

    def test_unknown_engine_rejected(self, codec, blob):
        with pytest.raises(DecodeError):
            codec.decompress(blob, num_threads=4, engine="gpu")

    def test_forced_non_sync_chunks(self, skewed_bytes, kernel_backend):
        """A 2**15-state table on short chunks never synchronizes
        (the n=16 collapse driver): chunks are absorbed, output must
        still be exact and both paths must agree on how many."""
        data = skewed_bytes[:24_000]
        table = TansTable.from_data(data, 15, alphabet_size=256)
        mc = MultiansCodec(table)
        blob = mc.compress(data)
        engine = "fused" if kernel_backend == "numpy" else "compiled"
        out_f, st_f = mc.decompress(blob, num_threads=64, engine=engine)
        out_r, st_r = mc.decompress(blob, num_threads=64, engine="reference")
        assert st_f.unsynced_threads > 0  # the premise of the test
        assert np.array_equal(out_f, data)
        assert np.array_equal(out_f, out_r)
        assert np.array_equal(st_f.overlap_symbols, st_r.overlap_symbols)
        assert st_f.unsynced_threads == st_r.unsynced_threads

    @pytest.mark.parametrize("n", [2400, 2473, 3000])
    def test_ragged_trailing_chunks(self, skewed_bytes, n,
                                   kernel_backend):
        """The chunk plan rounds the bit span up, so trailing chunk
        starts can lie past the stream end at high thread counts
        (e.g. 12k bits / 256 chunks).  Those parked lanes must not be
        gathered out of range (regression: IndexError)."""
        data = skewed_bytes[:n]
        table = TansTable.from_data(data, 11, alphabet_size=256)
        mc = MultiansCodec(table)
        blob = mc.compress(data)
        enc, _ = mc.parse(blob)
        P, starts, _ = mc._plan_chunks(enc, 256)
        assert int(starts.max()) > enc.bit_count  # the premise
        engine = "fused" if kernel_backend == "numpy" else "compiled"
        out_f, st_f = mc.decompress(blob, num_threads=256, engine=engine)
        out_r, st_r = mc.decompress(blob, num_threads=256,
                                    engine="reference")
        assert np.array_equal(out_f, data)
        assert np.array_equal(out_f, out_r)
        assert np.array_equal(st_f.overlap_symbols, st_r.overlap_symbols)
        assert st_f.unsynced_threads == st_r.unsynced_threads

    def test_speculative_pass_end_cursors(self, codec, blob):
        """The staged end cursors must equal a serial re-decode of
        each chunk (the seed recomputed them with per-bit loops)."""
        enc, table = codec.parse(blob)
        P, starts, ends = codec._plan_chunks(enc, 16)
        payload = np.frombuffer(enc.payload, dtype=np.uint8)
        spec = fused_speculative_pass(
            table, payload, enc.bit_count, starts, ends,
            enc.initial_state, enc.num_symbols,
        )
        dec = TansDecoder(table)
        # Chunk 0 decodes from the true state: replay it serially.
        L0 = int(spec.traj_len[0])
        out, x, p = dec.decode_from_reference(
            payload, enc.bit_count, enc.initial_state, 0, L0
        )
        assert int(spec.end_state[0]) == x
        assert int(spec.end_pos[0]) == p
        assert np.array_equal(
            table.dec_sym[spec.traj_state[:L0, 0] - table.table_size], out
        )


class TestSyncLengthDifferential:
    @pytest.mark.parametrize("table_bits", [10, 12, 14])
    def test_matches_reference(self, skewed_bytes, table_bits):
        table = TansTable.from_data(skewed_bytes, table_bits, alphabet_size=256)
        mc = MultiansCodec(table)
        enc, _ = mc.parse(mc.compress(skewed_bytes))
        kw = dict(samples=6, window_symbols=20_000, seed=3)
        assert measure_sync_length(table, enc, **kw) == (
            measure_sync_length_reference(table, enc, **kw)
        )

    def test_empty_window(self, table12):
        enc = TansEncoder(table12).encode(np.array([], dtype=np.uint8))
        assert measure_sync_length(table12, enc, samples=4) == 0.0


class TestHypothesisRoundTrips:
    @settings(max_examples=25, deadline=None)
    @given(
        data=st.lists(
            st.integers(min_value=0, max_value=31),
            min_size=1, max_size=2_000,
        ),
        threads=st.sampled_from([1, 3, 8, 27, 64, 500]),
        table_bits=st.sampled_from([7, 9, 11]),
    )
    def test_roundtrip_fused_and_reference(self, data, threads, table_bits):
        arr = np.asarray(data, dtype=np.int64)
        table = TansTable.from_data(arr, table_bits, alphabet_size=32)
        mc = MultiansCodec(table)
        blob = mc.compress(arr)
        out_f, st_f = mc.decompress(blob, num_threads=threads)
        out_r, st_r = mc.decompress(blob, num_threads=threads, engine="reference")
        assert np.array_equal(out_f, arr)
        assert np.array_equal(out_f, out_r)
        assert np.array_equal(st_f.overlap_symbols, st_r.overlap_symbols)
        assert st_f.unsynced_threads == st_r.unsynced_threads

    @settings(max_examples=15, deadline=None)
    @given(
        data=st.lists(
            st.integers(min_value=0, max_value=3),
            min_size=1, max_size=500,
        ),
    )
    def test_skewed_small_alphabet_single_stream(self, data):
        """Tiny alphabets produce zero-bit symbols (f_s > T/2), the
        staged sweep's no-read branch."""
        arr = np.asarray(data, dtype=np.int64)
        table = TansTable.from_data(arr, 6, alphabet_size=4)
        enc = TansEncoder(table).encode(arr)
        dec = TansDecoder(table)
        assert np.array_equal(dec.decode(enc), arr)
        assert np.array_equal(dec.decode(enc, engine="reference"), arr)
