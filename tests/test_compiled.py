"""Tests for the compiled kernel backend surface (DESIGN.md §19).

Covers the knob itself — ``split_backend`` parsing, ``backend_choices``
— the graceful numpy fallback when no toolchain exists (forced via
``REPRO_COMPILED_TOOLCHAIN=none``), and the warm-up contract: after
:func:`repro.parallel.compiled.warm_up` no compile may ever land
inside a timed region (asserted through the compile-event counter).
Bit-identity of the compiled loops themselves is asserted by the
backend-parametrized differential suites (``test_fused*``,
``test_golden``), not here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decoder import build_thread_tasks
from repro.core.encoder import RecoilEncoder
from repro.errors import ParallelismError
from repro.parallel import compiled
from repro.parallel.executor import decode_with_pool
from repro.parallel.simd import LaneEngine

from conftest import needs_compiled


class TestSplitBackend:
    @pytest.mark.parametrize(
        "backend,pool,kernel",
        [
            ("thread", "thread", "numpy"),
            ("process", "process", "numpy"),
            ("fused", "fused", "numpy"),
            ("compiled", "thread", "compiled"),
            ("thread+compiled", "thread", "compiled"),
            ("process+compiled", "process", "compiled"),
            ("fused+compiled", "fused", "compiled"),
        ],
    )
    def test_parse(self, backend, pool, kernel):
        assert compiled.split_backend(backend) == (pool, kernel)

    def test_bare_compiled_uses_default_pool(self):
        assert compiled.split_backend(
            "compiled", default_pool="fused"
        ) == ("fused", "compiled")

    @pytest.mark.parametrize("bad", ["thread+gpu", "process+numba", "x+"])
    def test_unknown_suffix_rejected(self, bad):
        with pytest.raises(ValueError):
            compiled.split_backend(bad)

    def test_unknown_pool_passes_through(self):
        # Pool validation belongs to the caller (it owns the error
        # type); the parser only splits.
        assert compiled.split_backend("gpu") == ("gpu", "numpy")

    def test_backend_choices(self):
        assert compiled.backend_choices(("thread", "process")) == (
            "thread",
            "process",
            "compiled",
            "thread+compiled",
            "process+compiled",
        )

    def test_effective_kernel_rejects_unknown(self):
        with pytest.raises(ValueError):
            compiled.effective_kernel("gpu")

    def test_effective_kernel_numpy_is_identity(self):
        assert compiled.effective_kernel("numpy") == "numpy"

    def test_executor_rejects_bad_suffix_as_parallelism_error(
        self, skewed_bytes, provider11
    ):
        with pytest.raises(ParallelismError):
            decode_with_pool(
                provider11, 32, np.zeros(4, np.uint16), [], 0,
                np.uint8, 2, backend="thread+gpu",
            )


@pytest.fixture
def forced_none(monkeypatch):
    """Force toolchain detection to ``none`` for one test, restoring
    real detection afterwards."""
    monkeypatch.setenv("REPRO_COMPILED_TOOLCHAIN", "none")
    compiled.reset_for_tests()
    yield
    monkeypatch.delenv("REPRO_COMPILED_TOOLCHAIN", raising=False)
    compiled.reset_for_tests()


class TestFallbackWithoutToolchain:
    def test_detection_and_resolution(self, forced_none):
        assert compiled.toolchain() == "none"
        assert not compiled.kernel_available()
        assert compiled.effective_kernel("compiled") == "numpy"
        assert compiled.warm_up() == "numpy"

    def test_decode_still_works_on_numpy(
        self, forced_none, skewed_bytes, provider11
    ):
        """kernel="compiled" on a toolchain-less host silently runs
        the numpy loops — output identical, nothing raises."""
        data = skewed_bytes[:4_000]
        enc = RecoilEncoder(provider11).encode(data, num_threads=4)
        tasks = build_thread_tasks(
            enc.metadata, len(enc.words), enc.final_states
        )
        out = np.empty(enc.num_symbols, dtype=np.uint8)
        LaneEngine(provider11, 32, kernel="compiled").run(
            enc.words, tasks, out
        )
        assert np.array_equal(out, data)

    def test_pool_reports_effective_numpy(
        self, forced_none, skewed_bytes, provider11
    ):
        data = skewed_bytes[:4_000]
        enc = RecoilEncoder(provider11).encode(data, num_threads=4)
        tasks = build_thread_tasks(
            enc.metadata, len(enc.words), enc.final_states
        )
        res = decode_with_pool(
            provider11, 32, enc.words, tasks, enc.num_symbols,
            np.uint8, 2, backend="thread+compiled",
        )
        assert res.kernel == "numpy"
        assert np.array_equal(res.symbols, data)

    def test_service_reports_configured_vs_effective(self, forced_none):
        from repro.serve import RecoilService, ServiceConfig

        r = np.random.default_rng(77)
        data = np.minimum(
            np.floor(r.exponential(9.0, 5_000)), 255
        ).astype(np.uint8)
        cfg = ServiceConfig(decode_backend="compiled")
        with RecoilService(config=cfg) as svc:
            svc.put_asset("a", data)
            assert np.array_equal(svc.decompress("a", 8), data)
            snap = svc.metrics_snapshot()
            assert snap["resilience"]["kernel"] == {
                "configured": "compiled",
                "effective": "numpy",
            }

    def test_fallback_notice_logged_once(self, forced_none, caplog):
        import logging

        with caplog.at_level(logging.WARNING, logger="repro.compiled"):
            assert compiled.effective_kernel("compiled") == "numpy"
            assert compiled.effective_kernel("compiled") == "numpy"
        notices = [
            r for r in caplog.records if "falling back" in r.message
        ]
        assert len(notices) == 1


@needs_compiled
class TestWarmUpContract:
    def test_warm_up_idempotent_and_effective(self):
        assert compiled.warm_up() == "compiled"
        events = compiled.compile_events()
        assert compiled.warm_up() == "compiled"
        assert compiled.compile_events() == events

    def test_no_compile_inside_timed_region(
        self, skewed_bytes, provider11
    ):
        """The benchmark/serve contract: once warmed, decodes and
        encodes on the compiled kernel never trigger a compile (the
        event counter stays frozen across the timed work)."""
        assert compiled.warm_up() == "compiled"
        data = skewed_bytes[:8_000]
        events_before = compiled.compile_events()
        # -- timed region (as a benchmark would measure it) ----------
        enc = RecoilEncoder(provider11).encode(
            data, num_threads=8, kernel="compiled"
        )
        tasks = build_thread_tasks(
            enc.metadata, len(enc.words), enc.final_states
        )
        res = decode_with_pool(
            provider11, 32, enc.words, tasks, enc.num_symbols,
            np.uint8, 2, backend="thread+compiled",
        )
        # -- end timed region ----------------------------------------
        assert np.array_equal(res.symbols, data)
        assert res.kernel == "compiled"
        assert compiled.compile_events() == events_before

    def test_service_startup_warms_up(self):
        """A compiled-kernel service warms up in __init__, so its
        first request never pays the build."""
        from repro.serve import RecoilService, ServiceConfig

        r = np.random.default_rng(78)
        data = np.minimum(
            np.floor(r.exponential(9.0, 5_000)), 255
        ).astype(np.uint8)
        cfg = ServiceConfig(decode_backend="fused+compiled")
        with RecoilService(config=cfg) as svc:
            events = compiled.compile_events()
            svc.put_asset("a", data)
            assert np.array_equal(svc.decompress("a", 8), data)
            assert compiled.compile_events() == events
            assert svc.decode_kernel == "compiled"
