"""Tests for the ``recoil`` file CLI."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.cli import main


@pytest.fixture()
def sample_file(tmp_path, skewed_bytes):
    path = tmp_path / "input.bin"
    skewed_bytes[:20_000].tofile(path)
    return path


class TestCli:
    def test_compress_decompress(self, tmp_path, sample_file, skewed_bytes,
                                  capsys):
        blob = tmp_path / "out.rcl"
        restored = tmp_path / "restored.bin"
        assert main(["compress", str(sample_file), str(blob),
                     "--splits", "32"]) == 0
        assert "32 splits" in capsys.readouterr().out
        assert main(["decompress", str(blob), str(restored)]) == 0
        out = np.fromfile(restored, dtype=np.uint8)
        assert np.array_equal(out, skewed_bytes[:20_000])

    def test_shrink_then_decompress(self, tmp_path, sample_file,
                                    skewed_bytes):
        blob = tmp_path / "out.rcl"
        small = tmp_path / "small.rcl"
        restored = tmp_path / "restored.bin"
        main(["compress", str(sample_file), str(blob), "--splits", "64"])
        assert main(["shrink", str(blob), str(small),
                     "--threads", "4"]) == 0
        assert small.stat().st_size < blob.stat().st_size
        assert main(["decompress", str(small), str(restored)]) == 0
        out = np.fromfile(restored, dtype=np.uint8)
        assert np.array_equal(out, skewed_bytes[:20_000])

    def test_decompress_with_cap(self, tmp_path, sample_file, skewed_bytes):
        blob = tmp_path / "out.rcl"
        restored = tmp_path / "restored.bin"
        main(["compress", str(sample_file), str(blob)])
        assert main(["decompress", str(blob), str(restored),
                     "--max-parallelism", "2"]) == 0
        out = np.fromfile(restored, dtype=np.uint8)
        assert np.array_equal(out, skewed_bytes[:20_000])

    def test_info(self, tmp_path, sample_file, capsys):
        blob = tmp_path / "out.rcl"
        main(["compress", str(sample_file), str(blob), "--splits", "16",
              "--quant", "12"])
        assert main(["info", str(blob)]) == 0
        out = capsys.readouterr().out
        assert "n=12" in out
        assert "decoder threads:  16" in out
        assert "sync sections" in out

    def test_info_json(self, tmp_path, sample_file, capsys):
        import json

        blob = tmp_path / "out.rcl"
        main(["compress", str(sample_file), str(blob), "--splits", "16",
              "--quant", "12"])
        capsys.readouterr()
        assert main(["info", str(blob), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["container_bytes"] == blob.stat().st_size
        assert stats["symbols"] == 20_000
        assert stats["quant_bits"] == 12
        assert stats["decoder_threads"] == 16
        assert stats["splits"] == 15
        assert stats["payload_bytes"] == 2 * stats["payload_words"]
        assert 0 < stats["metadata_bytes"] < stats["container_bytes"]
        assert stats["sync_overhead_symbols"] > 0

    def test_serve_bench_smoke(self, capsys):
        import json

        assert main(["serve-bench", "--symbols", "6000",
                     "--clients", "1", "2", "--repeats", "1",
                     "--json"]) == 0
        result = json.loads(capsys.readouterr().out)
        assert set(result["clients"]) == {"1", "2"}
        assert result["service_metrics"]["requests"]["failed"] == 0

    def test_missing_file(self, tmp_path, capsys):
        rc = main(["info", str(tmp_path / "nope.rcl")])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_corrupt_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.rcl"
        bad.write_bytes(b"not a container at all")
        rc = main(["info", str(bad)])
        assert rc == 1

    def test_empty_input_rejected(self, tmp_path, capsys):
        empty = tmp_path / "empty.bin"
        empty.write_bytes(b"")
        rc = main(["compress", str(empty), str(tmp_path / "o.rcl")])
        assert rc == 2

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestNetworkCli:
    """``recoil serve`` (daemon form) and ``recoil load-bench``
    (open-loop harness driver)."""

    def test_load_bench_json(self, capsys):
        assert main(["load-bench", "--symbols", "6000", "--assets", "2",
                     "--rate", "40", "--duration", "0.5",
                     "--seed", "3", "--json"]) == 0
        result = json.loads(capsys.readouterr().out)
        clean = result["clean"]
        assert clean["mismatches"] == 0
        assert clean["protocol_errors"] == 0
        assert clean["ok"] > 0
        lm = clean["latency_ms"]
        assert lm["samples"] > 0
        assert lm["p50"] <= lm["p99"] <= lm["p999"] <= lm["max"]
        assert result["faulted"] is None
        net = result["network_metrics"]
        assert net["connections"]["active"] == 0
        assert net["connections"]["opened"] == net["connections"]["closed"]

    def test_load_bench_faulted_table(self, capsys):
        assert main(["load-bench", "--symbols", "6000", "--assets", "2",
                     "--rate", "30", "--duration", "0.4", "--seed", "5",
                     "--faults", "net.stall:p=0.3"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert "faulted" in out
        assert "chaos: spec 'net.stall:p=0.3'" in out

    def test_load_bench_bad_fault_spec(self, capsys):
        assert main(["load-bench", "--faults", "no.such.point:p=0.5"]) == 1
        assert "error" in capsys.readouterr().err

    @pytest.mark.parametrize("sig", [signal.SIGINT, signal.SIGTERM])
    def test_serve_signal_drains_cleanly(self, sig):
        """The daemon must exit 0 on Ctrl-C/SIGTERM after a graceful
        drain — and actually serve bit-identical symbols first."""
        from repro.data import text_surrogate
        from repro.serve import RecoilClient

        src_dir = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src_dir) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--demo-assets", "1", "--symbols", "4000", "--splits", "16"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline()
            assert "listening on" in line, line
            hostport = line.split("listening on ")[1].split()[0]
            host, port = hostport.rsplit(":", 1)
            # The demo asset is deterministic: reproduce it here and
            # verify the daemon serves it bit-identically over TCP.
            expected = text_surrogate(4000, target_entropy=5.29, seed=11)
            with RecoilClient(host, int(port), timeout_s=30) as client:
                assert client.ping(b"probe") == b"probe"
                out = client.decompress("asset0", 4)
                assert np.array_equal(out, expected)
            proc.send_signal(sig)
            stdout, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
        assert proc.returncode == 0, stdout
        assert "draining" in stdout
        assert "drained" in stdout
        assert "2 requests over 1 connections" in stdout


class TestEncodingExperiment:
    def test_runs(self):
        from repro.experiments import encoding

        res = encoding.run(dataset="rand_100", profile="ci", splits=32)
        assert res.rows["recoil per-request shrink (s)"] < res.rows[
            "conventional per-request re-encode (s)"
        ]
        assert "MB/s" in res.table.render()
