"""Tests for the dataset generators and registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    DATASETS,
    exponential_bytes,
    load_dataset,
    synthesize_latents,
    text_surrogate,
)
from repro.data.images import LatentPlane
from repro.data.registry import BYTE_DATASETS, IMAGE_DATASETS
from repro.data.textgen import blended_distribution
from repro.stats import empirical_entropy


class TestExponentialBytes:
    def test_deterministic(self):
        a = exponential_bytes(10_000, 100, seed=1)
        b = exponential_bytes(10_000, 100, seed=1)
        assert np.array_equal(a, b)
        c = exponential_bytes(10_000, 100, seed=2)
        assert not np.array_equal(a, c)

    def test_entropy_ladder(self):
        """Larger lambda -> lower entropy (paper Table 4 ordering)."""
        ents = [
            empirical_entropy(exponential_bytes(100_000, lam, seed=0))
            for lam in (10, 50, 100, 200, 500)
        ]
        assert ents == sorted(ents, reverse=True)
        assert 5.5 < ents[0] < 6.8  # rand_10 ~ 6.26 bits in the paper
        assert ents[-1] < 1.5  # rand_500 ~ 1.12 bits

    def test_byte_range(self):
        data = exponential_bytes(50_000, 10, seed=0)
        assert data.dtype == np.uint8
        assert data.max() <= 255

    def test_bad_lambda(self):
        with pytest.raises(ValueError):
            exponential_bytes(10, 0)


class TestTextSurrogate:
    @pytest.mark.parametrize("target", [4.9, 5.29, 6.5])
    def test_entropy_hits_target(self, target):
        data = text_surrogate(200_000, target, seed=0)
        assert abs(empirical_entropy(data, 256) - target) < 0.05

    def test_unreachable_target_rejected(self):
        with pytest.raises(ValueError):
            text_surrogate(100, 9.0)
        with pytest.raises(ValueError):
            text_surrogate(100, 1.0)

    def test_looks_textish(self):
        data = text_surrogate(100_000, 5.0, seed=0)
        printable = np.mean((data >= 32) & (data < 127))
        assert printable > 0.9
        assert np.argmax(np.bincount(data)) == ord(" ")

    def test_blend_distribution_normalized(self):
        p = blended_distribution(5.3)
        assert p.sum() == pytest.approx(1.0)


class TestLatents:
    def test_plane_structure(self):
        plane = synthesize_latents(20_000, seed=0)
        assert isinstance(plane, LatentPlane)
        assert plane.num_symbols == 20_000
        assert plane.symbols.dtype == np.uint16
        assert plane.uncompressed_bytes == 40_000
        assert len(plane.scale_ids) == 20_000

    def test_scale_field_is_smooth(self):
        """Neighbouring latents share scales (the hyperprior effect)."""
        plane = synthesize_latents(20_000, seed=1)
        same_as_next = np.mean(
            plane.scale_ids[:-1] == plane.scale_ids[1:]
        )
        assert same_as_next > 0.5

    def test_compressibility_knob(self):
        lo = synthesize_latents(30_000, log_scale_mean=0.3, seed=2)
        hi = synthesize_latents(30_000, log_scale_mean=3.0, seed=2)
        assert lo.ideal_bits() < hi.ideal_bits()

    def test_symbols_within_model_support(self):
        plane = synthesize_latents(10_000, seed=3)
        for mid in np.unique(plane.scale_ids):
            mask = plane.scale_ids == mid
            freqs = plane.bank.models[int(mid)].freqs
            assert np.all(freqs[plane.symbols[mask]] > 0)


class TestRegistry:
    def test_all_names_present(self):
        assert set(BYTE_DATASETS + IMAGE_DATASETS) == set(DATASETS)
        assert len(DATASETS) == 12  # paper Table 4

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("nope")

    def test_ci_profile_small(self):
        data = load_dataset("rand_10", "ci")
        assert len(data) <= 1_000_000

    def test_scaling_profiles(self):
        spec = DATASETS["dickens"]
        assert spec.size_for("ci") < spec.size_for("default")
        assert spec.size_for("default") <= spec.size_for("paper")
        assert spec.size_for("paper") == spec.paper_bytes

    def test_enwik9_capped_on_default(self):
        assert DATASETS["enwik9"].size_for("default") <= 48_000_000

    def test_image_datasets_are_planes(self):
        plane = load_dataset("div2k805", "ci")
        assert isinstance(plane, LatentPlane)

    def test_image_ratios_ordered_like_paper(self):
        """805 most compressible, 803 least (paper Table 4/6)."""
        bits = {}
        for name in IMAGE_DATASETS:
            plane = load_dataset(name, "ci")
            bits[name] = plane.ideal_bits() / plane.num_symbols
        assert bits["div2k805"] < bits["div2k801"] < bits["div2k803"]
