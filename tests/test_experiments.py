"""Smoke + shape tests for the experiment reproductions.

Full-profile runs are `recoil-bench`'s job; here each experiment runs
on tiny datasets and the paper's qualitative claims are asserted.
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.data import exponential_bytes, load_dataset
from repro.experiments import build_variations, figure3, figure7, table4, tables56
from repro.experiments.common import provider_for
from repro.experiments.tables56 import headline_saving


@pytest.fixture(scope="module")
def small_variations():
    data = exponential_bytes(250_000, lam=100, seed=50)
    return build_variations(
        "rand_100", data, 11, large=256, small=8, include_multians=True
    )


class TestVariations:
    def test_all_variations_present(self, small_variations):
        assert set(small_variations.sizes) == set("abcdef")

    def test_all_variations_decode(self, small_variations):
        """Every variation's container decodes back to the input."""
        art = small_variations
        from repro.baselines import ConventionalCodec, SingleThreadCodec
        from repro.core import RecoilCodec
        from repro.tans import MultiansCodec, TansTable

        st = SingleThreadCodec(art.provider)
        assert np.array_equal(st.decompress(art.blobs["a"]), art.data)
        conv = ConventionalCodec(art.provider)
        for v in ("b", "d"):
            assert np.array_equal(conv.decompress(art.blobs[v]), art.data)
        rc = RecoilCodec(art.provider)
        for v in ("c", "e"):
            assert np.array_equal(rc.decompress(art.blobs[v]), art.data)
        table = TansTable.from_data(art.data, 12, alphabet_size=256)
        enc, tab = MultiansCodec(table).parse(art.blobs["f"])
        out, _ = MultiansCodec(tab).parallel_decode(enc, tab, 16)
        assert np.array_equal(out.astype(art.data.dtype), art.data)

    def test_ordering_claims(self, small_variations):
        art = small_variations
        assert art.sizes["c"] < art.sizes["b"]  # Recoil wins Large
        assert art.sizes["e"] <= art.sizes["d"]  # and Small
        assert art.sizes["e"] < art.sizes["c"]  # combining helps
        assert art.delta("d") < art.delta("b") / 5
        assert art.sizes["a"] < len(art.data)  # it does compress

    def test_image_variations_no_multians(self):
        plane = load_dataset("div2k805", "ci")
        art = build_variations(
            "div2k805", plane, 16, large=64, small=8
        )
        assert "f" not in art.sizes
        assert art.sizes["c"] < art.sizes["b"]


class TestFigure3:
    def test_monotone(self):
        res = figure3.run(profile="ci")
        assert res.sizes[0] < res.sizes[1] < res.sizes[2]
        assert res.deltas_percent[0] == 0.0


class TestTable4:
    def test_rows(self):
        res = table4.run(profile="ci", datasets=["rand_50", "div2k801"])
        assert "n11" in res.rows["rand_50"]
        assert "n11" not in res.rows["div2k801"]
        assert res.rows["rand_50"]["n16"] > 0


class TestTables56:
    def test_shape_checks_pass(self):
        res = tables56.run(
            11, profile="ci", datasets=["rand_100", "dickens"]
        )
        checks = res.shape_checks()
        assert all(checks.values()), checks

    def test_headline_negative(self):
        res = tables56.run(11, profile="ci", datasets=["rand_500"])
        name, saving = headline_saving(res)
        assert name == "rand_500"
        assert saving < -1.0


class TestFigure7:
    @pytest.fixture(scope="class")
    def res(self):
        return figure7.run(
            11, profile="ci", datasets=["rand_100"],
            multians_decode_cap=150_000,
        )

    def test_panel_complete(self, res):
        cpu = {p.codec for p in res.points if p.device == "cpu"}
        gpu = {p.codec for p in res.points if p.device == "gpu"}
        assert len(cpu) == 6
        assert gpu == {"multians", "Conventional CUDA", "Recoil CUDA"}

    def test_orderings(self, res):
        s = res.series
        name = "rand_100"
        assert s("Conventional AVX512", "cpu")[name] > 4 * s(
            "Single-Thread AVX512", "cpu"
        )[name]
        assert s("Recoil CUDA", "gpu")[name] > 3 * s("multians", "gpu")[name]

    def test_tables_render(self, res):
        assert "Recoil" in res.cpu_table.render()
        assert "multians" in res.gpu_table.render()


class TestRunner:
    def test_runner_subset(self):
        from repro.experiments import runner

        buf = io.StringIO()
        results = runner.run_all("ci", ("fig3",), stream=buf)
        assert "fig3" in results
        assert "Figure 3" in buf.getvalue()

    def test_runner_cli_rejects_unknown(self):
        from repro.experiments import runner

        with pytest.raises(SystemExit):
            runner.main(["--experiments", "bogus"])

    def test_emit_report(self):
        from repro.experiments import runner

        buf = io.StringIO()
        results = {"fig3": figure3.run(profile="ci")}
        runner.emit_report(results, buf)
        assert "|" in buf.getvalue()  # markdown table present
