"""Differential tests for the fused wide-lane encode kernel.

Every configuration pits the fused kernel
(:meth:`InterleavedEncoder.encode`, backed by
:mod:`repro.parallel.fused_encode`) against the original per-group
masked loop (:meth:`InterleavedEncoder.encode_reference`).  Streams,
final states and renormalization-event logs must be **bit-identical**
— the fused kernel is a re-scheduling of the same work, not an
approximation — and everything it encodes must decode through the
fused decode kernel of PR 1.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.conventional import ConventionalCodec
from repro.core.decoder import RecoilDecoder
from repro.core.encoder import RecoilEncoder
from repro.errors import EncodeError, ModelError
from repro.parallel.buffers import ScratchArena
from repro.parallel.fused_encode import EncodeTask, fused_encode_run
from repro.rans.adaptive import IndexedModelProvider, StaticModelProvider
from repro.rans.interleaved import InterleavedDecoder, InterleavedEncoder
from repro.rans.model import SymbolModel

LANES = [1, 4, 32]


@pytest.fixture(scope="module")
def payload():
    r = np.random.default_rng(421)
    return np.minimum(np.floor(r.exponential(9.0, 6_000)), 255).astype(
        np.uint8
    )


@pytest.fixture(scope="module")
def adaptive_provider(payload):
    """Three distinct models cycled per symbol index."""
    sym = np.arange(256, dtype=np.float64)
    models = [
        SymbolModel.from_counts(np.exp(-sym / s) * 1_000 + 1, 10)
        for s in (4.0, 12.0, 40.0)
    ]
    ids = (np.arange(len(payload)) // 7) % 3
    return IndexedModelProvider(models, ids)


def _provider(kind, payload, adaptive_provider):
    if kind == "adaptive":
        return adaptive_provider
    return StaticModelProvider(
        SymbolModel.from_data(payload, 11, alphabet_size=256)
    )


def _assert_encodes_equal(a, b):
    assert np.array_equal(a.words, b.words)
    assert np.array_equal(a.final_states, b.final_states)
    assert a.num_symbols == b.num_symbols
    if a.events is not None or b.events is not None:
        assert np.array_equal(
            a.events.symbol_index, b.events.symbol_index
        )
        assert np.array_equal(a.events.lane, b.events.lane)
        assert np.array_equal(a.events.state_after, b.events.state_after)


class TestFusedVsReference:
    @pytest.mark.parametrize("lanes", LANES)
    @pytest.mark.parametrize("kind", ["static", "adaptive"])
    @pytest.mark.parametrize("record_events", [False, True])
    def test_bit_identical(
        self, payload, adaptive_provider, lanes, kind, record_events,
        kernel_backend,
    ):
        provider = _provider(kind, payload, adaptive_provider)
        enc = InterleavedEncoder(provider, lanes=lanes)
        _assert_encodes_equal(
            enc.encode(
                payload, record_events=record_events,
                kernel=kernel_backend,
            ),
            enc.encode_reference(payload, record_events=record_events),
        )

    @pytest.mark.parametrize("lanes", LANES)
    @pytest.mark.parametrize(
        "n", [0, 1, 3, 31, 32, 33, 63, 64, 65, 1023, 4097]
    )
    def test_edge_lengths(self, payload, lanes, n, kernel_backend):
        provider = _provider("static", payload, None)
        enc = InterleavedEncoder(provider, lanes=lanes)
        _assert_encodes_equal(
            enc.encode(
                payload[:n], record_events=True, kernel=kernel_backend
            ),
            enc.encode_reference(payload[:n], record_events=True),
        )

    def test_n16_first_group_renorm(self, payload):
        """n=16 admits first-group renormalization (f=1, x=L) — the
        trickiest parameter point on the encode side too."""
        model = SymbolModel.from_data(payload, 16, alphabet_size=256)
        enc = InterleavedEncoder(model, lanes=32)
        _assert_encodes_equal(
            enc.encode(payload, record_events=True),
            enc.encode_reference(payload, record_events=True),
        )

    def test_events_feed_identical_splits(self, payload):
        """Same events ⇒ same split metadata ⇒ same serving behavior."""
        provider = _provider("static", payload, None)
        md_fused = RecoilEncoder(provider).encode(payload, 8).metadata
        ref = InterleavedEncoder(provider, 32).encode_reference(
            payload, record_events=True
        )
        from repro.core.splitter import SplitSelector

        md_ref, _ = SplitSelector(
            ref.events, 32, ref.num_symbols
        ).select(8)
        assert len(md_fused.entries) == len(md_ref.entries)
        for a, b in zip(md_fused.entries, md_ref.entries):
            assert a.word_offset == b.word_offset
            assert np.array_equal(a.lane_indices, b.lane_indices)
            assert np.array_equal(a.lane_states, b.lane_states)

    def test_arena_reuse_across_sizes(self, payload):
        """One encoder instance across shifting geometries must not
        leak scratch state between calls (DESIGN.md §9)."""
        provider = _provider("static", payload, None)
        enc = InterleavedEncoder(provider, lanes=32)
        for n in (4_096, 100, 6_000, 33, 0, 5_000):
            _assert_encodes_equal(
                enc.encode(payload[:n], record_events=True),
                enc.encode_reference(payload[:n], record_events=True),
            )

    def test_zero_frequency_symbol_rejected(self, payload):
        counts = np.zeros(256)
        counts[:4] = [5, 3, 2, 1]
        model = SymbolModel.from_counts(counts, 11)
        assert int(model.freqs[200]) == 0
        sparse = StaticModelProvider(model)
        bad = np.array([0, 1, 200, 2], dtype=np.uint8)
        with pytest.raises(ModelError):
            InterleavedEncoder(sparse, lanes=2).encode(bad)
        with pytest.raises(ModelError):
            InterleavedEncoder(sparse, lanes=2).encode_reference(bad)

    def test_non_1d_rejected(self, payload):
        provider = _provider("static", payload, None)
        with pytest.raises(EncodeError):
            InterleavedEncoder(provider).encode(
                np.zeros((2, 2), dtype=int)
            )


class TestRoundTripThroughFusedDecoder:
    @pytest.mark.parametrize("lanes", LANES)
    @pytest.mark.parametrize("kind", ["static", "adaptive"])
    def test_full_stream(self, payload, adaptive_provider, lanes, kind):
        provider = _provider(kind, payload, adaptive_provider)
        enc = InterleavedEncoder(provider, lanes=lanes).encode(payload)
        dec = InterleavedDecoder(provider, lanes=lanes)
        out = dec.decode(enc.words, enc.final_states, enc.num_symbols)
        assert np.array_equal(out, payload)

    @pytest.mark.parametrize("threads", [1, 2, 8])
    @pytest.mark.parametrize("kind", ["static", "adaptive"])
    def test_recoil_split_decode(
        self, payload, adaptive_provider, threads, kind
    ):
        """Fused-encoded events drive mid-stream decoder entry."""
        provider = _provider(kind, payload, adaptive_provider)
        enc = RecoilEncoder(provider).encode(payload, num_threads=threads)
        res = RecoilDecoder(provider).decode(
            enc.words, enc.final_states, enc.metadata
        )
        assert np.array_equal(res.symbols, payload)


class TestMultiTaskFusion:
    @pytest.mark.parametrize("partitions", [1, 3, 8, 17])
    @pytest.mark.parametrize("kind", ["static", "adaptive"])
    def test_conventional_partitions_bit_identical(
        self, payload, adaptive_provider, partitions, kind
    ):
        """All partitions fused into one kernel call == per-partition
        reference loops, word for word."""
        provider = _provider(kind, payload, adaptive_provider)
        codec = ConventionalCodec(provider, lanes=32)
        a = codec.encode(payload, partitions)
        b = codec.encode_reference(payload, partitions)
        assert np.array_equal(a.words, b.words)
        assert np.array_equal(a.word_offsets, b.word_offsets)
        assert np.array_equal(a.final_states, b.final_states)
        out, _, _ = codec.decode(a)
        assert np.array_equal(out, payload)

    def test_unequal_task_lengths(self, payload, kernel_backend):
        """Tasks of very different sizes: short ones drain in the
        steady window, long ones continue through per-task tails."""
        provider = _provider("static", payload, None)
        arena = ScratchArena()
        sizes = [0, 7, 65, 2_000, 31, 6_000]
        tasks = [
            EncodeTask(payload[:sz], record_events=True) for sz in sizes
        ]
        outs = fused_encode_run(provider, 32, tasks, arena,
                                kernel=kernel_backend)
        enc = InterleavedEncoder(provider, lanes=32)
        for sz, out in zip(sizes, outs):
            ref = enc.encode_reference(payload[:sz], record_events=True)
            assert np.array_equal(out.words, ref.words)
            assert np.array_equal(out.final_states, ref.final_states)
            assert np.array_equal(
                out.event_symbol, ref.events.symbol_index
            )
            assert np.array_equal(out.event_lane, ref.events.lane)
            assert np.array_equal(
                out.event_state, ref.events.state_after
            )

    def test_results_never_alias_scratch(self, payload):
        """Arena rule 2: returned arrays are fresh — re-running the
        kernel must not mutate previously returned results."""
        provider = _provider("static", payload, None)
        arena = ScratchArena()
        first = fused_encode_run(
            provider, 32, [EncodeTask(payload[:1000])], arena
        )[0]
        words_copy = first.words.copy()
        states_copy = first.final_states.copy()
        fused_encode_run(
            provider, 32, [EncodeTask(payload[1000:3000])], arena
        )
        assert np.array_equal(first.words, words_copy)
        assert np.array_equal(first.final_states, states_copy)


class TestEncodeProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=2_000),
        lanes=st.sampled_from([1, 2, 7, 32]),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_random_roundtrip_and_parity(self, n, lanes, seed):
        r = np.random.default_rng(seed)
        data = np.minimum(
            np.floor(r.exponential(20.0, n)), 255
        ).astype(np.uint8)
        model = SymbolModel.from_counts(
            np.bincount(data, minlength=256) + 1, 11
        )
        enc = InterleavedEncoder(model, lanes=lanes)
        fused = enc.encode(data, record_events=True)
        ref = enc.encode_reference(data, record_events=True)
        _assert_encodes_equal(fused, ref)
        dec = InterleavedDecoder(model, lanes=lanes)
        out = dec.decode(fused.words, fused.final_states, n)
        assert np.array_equal(out, data)
