"""Package-level checks: exports, version, error hierarchy."""

from __future__ import annotations

import pathlib

import pytest

import repro
from repro import errors


class TestExports:
    def test_all_resolvable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_core_all_resolvable(self):
        import repro.core as core

        for name in core.__all__:
            assert getattr(core, name) is not None

    def test_version_matches_pyproject(self):
        root = pathlib.Path(repro.__file__).resolve().parents[2]
        pyproject = (root / "pyproject.toml").read_text()
        assert f'version = "{repro.__version__}"' in pyproject

    def test_subpackages_importable(self):
        import repro.baselines
        import repro.bitio
        import repro.data
        import repro.experiments
        import repro.parallel
        import repro.rans
        import repro.stats
        import repro.tans


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ModelError,
            errors.EncodeError,
            errors.DecodeError,
            errors.MetadataError,
            errors.ContainerError,
            errors.ParallelismError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        assert issubclass(exc, Exception)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.DecodeError("x")
