"""Chaos suite: drive every registered fault point and assert recovery.

The resilience contract (DESIGN.md §15) in test form:

- the fault registry itself is deterministic, scoped, and complete;
- a poisoned request fails alone — batchmates decode bit-identically;
- a crashed shard worker is respawned and the pool keeps serving;
- a degraded service re-promotes thread→process after its cooldown;
- expired deadlines are enforced before kernel dispatch;
- under concurrent clients with faults armed at every point, every
  non-poisoned request still returns bytes identical to
  ``recoil_decompress``, nothing leaks in ``/dev/shm``, and no threads
  are left behind.

Probabilistic rules are seeded from ``REPRO_CHAOS_SEED`` (default 0)
so a CI failure is reproducible by exporting the seed it printed.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro import faults
from repro.core.api import recoil_decompress
from repro.errors import (
    DeadlineError,
    FaultInjected,
    ParallelismError,
    ReproError,
    ServeError,
)
from repro.parallel.shards import (
    _SHM_PREFIX,
    ShardedExecutor,
    sharding_available,
)
from repro.serve import RecoilService, ServiceConfig

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

needs_sharding = pytest.mark.skipif(
    not sharding_available(), reason="no shared memory on this host"
)


def _leaked_segments() -> list[str]:
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        return []
    return [f for f in os.listdir(shm_dir) if f.startswith(_SHM_PREFIX)]


@pytest.fixture(autouse=True)
def _disarm():
    """No rule may leak between tests, pass or fail."""
    yield
    faults.reset()


@pytest.fixture(scope="module")
def payload() -> np.ndarray:
    r = np.random.default_rng(7)
    return np.minimum(np.floor(r.exponential(11.0, 24_000)), 255).astype(
        np.uint8
    )


# ---------------------------------------------------------------------------
# The registry itself.
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_disabled_is_a_no_op(self):
        assert not faults.enabled()
        faults.fire(faults.SHM_ALLOC)  # must not raise
        assert not faults.triggered(faults.WORKER_CRASH)

    def test_nth_trigger_fires_exactly_once(self):
        with faults.inject(faults.STORE_ENCODE, nth=3) as rule:
            faults.fire(faults.STORE_ENCODE)
            faults.fire(faults.STORE_ENCODE)
            with pytest.raises(FaultInjected):
                faults.fire(faults.STORE_ENCODE)
            # times defaults to 1 for nth rules: never again.
            faults.fire(faults.STORE_ENCODE)
            assert (rule.hits, rule.fires) == (3, 1)

    def test_probability_is_deterministic_per_seed(self):
        def sequence() -> list[bool]:
            out = []
            with faults.inject(
                faults.BATCH_DISPATCH, p=0.5, seed=CHAOS_SEED
            ):
                for _ in range(64):
                    try:
                        faults.fire(faults.BATCH_DISPATCH)
                        out.append(False)
                    except FaultInjected:
                        out.append(True)
            return out

        first, second = sequence(), sequence()
        assert first == second
        assert any(first) and not all(first)

    def test_times_caps_probabilistic_rules(self):
        fired = 0
        with faults.inject(faults.KERNEL_EXEC, p=1.0, times=2):
            for _ in range(10):
                try:
                    faults.fire(faults.KERNEL_EXEC)
                except FaultInjected:
                    fired += 1
        assert fired == 2

    def test_key_filter_targets_one_asset(self):
        with faults.inject(
            faults.SERVE_REQUEST, p=1.0, key="bad"
        ) as rule:
            faults.fire(faults.SERVE_REQUEST, key="good")
            faults.fire(faults.SERVE_REQUEST)  # keyless call: no match
            with pytest.raises(FaultInjected):
                faults.fire(faults.SERVE_REQUEST, key="bad")
            # Non-matching calls are not even counted as hits.
            assert (rule.hits, rule.fires) == (1, 1)

    def test_context_exit_disarms_even_on_error(self):
        with pytest.raises(RuntimeError):
            with faults.inject(faults.SHM_ALLOC, p=1.0):
                assert faults.enabled()
                raise RuntimeError("boom")
        assert not faults.enabled()
        faults.fire(faults.SHM_ALLOC)

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            faults.FaultRule("made.up", p=0.5)

    def test_trigger_validation(self):
        with pytest.raises(ValueError):
            faults.FaultRule(faults.SHM_ALLOC)  # neither p nor nth
        with pytest.raises(ValueError):
            faults.FaultRule(faults.SHM_ALLOC, p=0.5, nth=2)  # both
        with pytest.raises(ValueError):
            faults.FaultRule(faults.SHM_ALLOC, p=1.5)
        with pytest.raises(ValueError):
            faults.FaultRule(faults.SHM_ALLOC, nth=0)

    def test_default_exceptions_match_the_surface(self):
        # shm/pipe points must raise OSError (what the real failure
        # raises there), everything else the typed FaultInjected.
        for point in (
            faults.SHM_ALLOC,
            faults.SHM_ATTACH,
            faults.PIPE_SEND,
            faults.PIPE_RECV,
        ):
            exc = faults.FaultRule(point, p=1.0).make_exception()
            assert isinstance(exc, OSError)
        exc = faults.FaultRule(faults.WORKER_JOB, p=1.0).make_exception()
        assert isinstance(exc, FaultInjected)

    def test_exception_override(self):
        with faults.inject(
            faults.STORE_ENCODE, nth=1, exc=MemoryError
        ):
            with pytest.raises(MemoryError):
                faults.fire(faults.STORE_ENCODE)

    def test_registered_points_is_complete(self):
        points = faults.registered_points()
        assert set(points) == set(faults.POINTS)
        assert all(points.values())

    def test_snapshot_reports_counters(self):
        with faults.inject(faults.SHM_ALLOC, nth=1):
            with pytest.raises(OSError):
                faults.fire(faults.SHM_ALLOC)
            (snap,) = faults.snapshot()
            assert snap["point"] == faults.SHM_ALLOC
            assert snap["fires"] == 1
        assert faults.snapshot() == []


class TestSpecs:
    def test_parse_spec_round_trip(self):
        rules = faults.parse_spec(
            "worker.crash:nth=3,shm.alloc:p=0.05:seed=7,"
            "serve.request:p=1:key=bad:times=2"
        )
        assert rules == [
            {"point": "worker.crash", "nth": 3},
            {"point": "shm.alloc", "p": 0.05, "seed": 7},
            {"point": "serve.request", "p": 1.0, "key": "bad", "times": 2},
        ]

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "nope.nope:p=1",
            "shm.alloc",  # no trigger
            "shm.alloc:p=2",
            "shm.alloc:wat=1",
            "shm.alloc:p",
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            faults.parse_spec(spec)

    def test_inject_spec_arms_and_disarms(self):
        with faults.inject_spec("store.encode:nth=1"):
            assert faults.enabled()
            with pytest.raises(FaultInjected):
                faults.fire(faults.STORE_ENCODE)
        assert not faults.enabled()


# ---------------------------------------------------------------------------
# Poison isolation on the serve path.
# ---------------------------------------------------------------------------


class TestPoisonIsolation:
    def test_poison_fails_alone_batchmates_intact(self, payload):
        from repro.rans.model import SymbolModel

        cfg = ServiceConfig(batch_window_s=0.05, max_batch_requests=64)
        with RecoilService(config=cfg) as svc:
            # One shared model + equal sizes => equal fuse keys, so
            # the poisoned request shares a batch with the innocents.
            model = SymbolModel.from_data(payload, 11, alphabet_size=256)
            svc.put_asset("good", payload, num_splits=32, model=model)
            svc.put_asset(
                "bad", np.roll(payload, 500), num_splits=32, model=model
            )
            reference = recoil_decompress(svc.serve("good", 4))
            with faults.inject(faults.SERVE_REQUEST, p=1.0, key="bad"):
                innocents = [svc.submit("good", 4) for _ in range(3)]
                poisoned = svc.submit("bad", 4)
                for req in innocents:
                    assert np.array_equal(req.result(120), reference)
                with pytest.raises(FaultInjected):
                    poisoned.result(120)
            snap = svc.metrics_snapshot()
            assert snap["resilience"]["poison_batches"] >= 1
            assert snap["resilience"]["poison_isolated"] == 1
            assert snap["resilience"]["poison_retries"] >= 1
            assert snap["requests"]["failed"] == 1

    def test_single_request_batch_fails_directly(self, payload):
        with RecoilService() as svc:
            svc.put_asset("a", payload, num_splits=32)
            with faults.inject(faults.BATCH_DISPATCH, nth=1):
                with pytest.raises(FaultInjected):
                    svc.decompress("a", 4, timeout=60)
            # No poison machinery for a lone request...
            snap = svc.metrics_snapshot()
            assert snap["resilience"]["poison_batches"] == 0
            # ...and the service still serves afterwards.
            out = svc.decompress("a", 4, timeout=60)
            assert np.array_equal(
                out, recoil_decompress(svc.serve("a", 4))
            )


# ---------------------------------------------------------------------------
# Executor self-healing under injected faults.
# ---------------------------------------------------------------------------


@needs_sharding
class TestExecutorChaos:
    def _decode(self, ex, enc, provider, **kw):
        from repro.core.decoder import build_thread_tasks

        tasks = build_thread_tasks(
            enc.metadata, len(enc.words), enc.final_states
        )
        return ex.decode(
            provider, 32, enc.words, tasks, enc.num_symbols, np.uint8, **kw
        )

    @pytest.fixture(scope="class")
    def encoded(self, payload):
        from repro.core.encoder import RecoilEncoder
        from repro.rans.model import SymbolModel

        model = SymbolModel.from_data(payload, 11, alphabet_size=256)
        return RecoilEncoder(model).encode(payload, num_threads=16), model

    def _retry_until_healed(self, ex, enc, provider, payload):
        deadline = time.monotonic() + 15
        while True:
            try:
                res = self._decode(ex, enc, provider)
                break
            except ParallelismError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.02)
        assert np.array_equal(res.symbols, payload)
        return res

    def test_injected_worker_crash_respawns(self, encoded, payload):
        from repro.rans.adaptive import StaticModelProvider

        enc, model = encoded
        provider = StaticModelProvider(model)
        with ShardedExecutor(2, respawn_backoff_s=0.01) as ex:
            ex.warm()
            with faults.inject(faults.WORKER_CRASH, nth=1):
                with pytest.raises(ParallelismError):
                    self._decode(ex, enc, provider)
            assert not ex.broken
            self._retry_until_healed(ex, enc, provider, payload)
            assert ex.respawns >= 1
            assert ex.dead_workers() == 0
        assert _leaked_segments() == []

    def test_injected_pipe_recv_failure_respawns(self, encoded, payload):
        from repro.rans.adaptive import StaticModelProvider

        enc, model = encoded
        provider = StaticModelProvider(model)
        with ShardedExecutor(2, respawn_backoff_s=0.01) as ex:
            ex.warm()
            with faults.inject(faults.PIPE_RECV, nth=1):
                with pytest.raises(ParallelismError):
                    self._decode(ex, enc, provider)
            assert not ex.broken
            self._retry_until_healed(ex, enc, provider, payload)
        assert _leaked_segments() == []

    def test_injected_shm_alloc_failure_is_clean(self, encoded, payload):
        from repro.rans.adaptive import StaticModelProvider

        enc, model = encoded
        provider = StaticModelProvider(model)
        with ShardedExecutor(2) as ex:
            ex.warm()
            with faults.inject(faults.SHM_ALLOC, nth=1):
                with pytest.raises(ParallelismError, match="shared memory"):
                    self._decode(ex, enc, provider)
            # An allocation failure kills no workers.
            assert ex.dead_workers() == 0
            res = self._decode(ex, enc, provider)
            assert np.array_equal(res.symbols, payload)
        assert _leaked_segments() == []

    def test_injected_worker_job_error_is_typed(self, encoded):
        from repro.rans.adaptive import StaticModelProvider

        enc, model = encoded
        provider = StaticModelProvider(model)
        with ShardedExecutor(2) as ex:
            ex.warm()
            with faults.inject(faults.WORKER_JOB, nth=1):
                # A worker-side ReproError ships back as itself, not
                # as a pool-infrastructure failure.
                with pytest.raises(FaultInjected):
                    self._decode(ex, enc, provider)
            # The worker survived (it raised, it did not die).
            assert ex.dead_workers() == 0
            assert not ex.broken
        assert _leaked_segments() == []

    def test_crash_loop_exhausts_respawn_budget(self, encoded):
        from repro.rans.adaptive import StaticModelProvider

        enc, model = encoded
        provider = StaticModelProvider(model)
        with ShardedExecutor(
            1, max_respawn_attempts=2, respawn_backoff_s=0.01,
            respawn_backoff_cap_s=0.01,
        ) as ex:
            ex.warm()
            with faults.inject(
                faults.WORKER_CRASH, p=1.0, times=1000
            ):
                deadline = time.monotonic() + 20
                while not ex.broken:
                    with pytest.raises(ParallelismError):
                        self._decode(ex, enc, provider)
                    time.sleep(0.02)
                    if time.monotonic() > deadline:
                        pytest.fail("pool never declared itself broken")
            with pytest.raises(ParallelismError, match="crash-looped"):
                self._decode(ex, enc, provider)
        assert _leaked_segments() == []


# ---------------------------------------------------------------------------
# Deadlines.
# ---------------------------------------------------------------------------


class TestDeadlines:
    def test_queued_expiry_never_reaches_the_kernel(self, payload):
        # A long batch window holds the request in queue; the deadline
        # passes first, so the dispatcher must fail it pre-kernel.
        cfg = ServiceConfig(batch_window_s=0.5)
        with RecoilService(config=cfg) as svc:
            svc.put_asset("a", payload, num_splits=32)
            req = svc.submit("a", 4, timeout=0.05)
            with pytest.raises(DeadlineError):
                req.result(30)
            snap = svc.metrics_snapshot()
            assert snap["resilience"]["deadline_expired"] == 1
            assert snap["batches"]["dispatched"] == 0  # no kernel time
            assert snap["requests"]["failed"] == 1

    def test_decompress_surfaces_deadline_error(self, payload):
        cfg = ServiceConfig(batch_window_s=0.5)
        with RecoilService(config=cfg) as svc:
            svc.put_asset("a", payload, num_splits=32)
            with pytest.raises(DeadlineError):
                svc.decompress("a", 4, timeout=0.05)

    def test_generous_deadline_decodes_normally(self, payload):
        with RecoilService() as svc:
            svc.put_asset("a", payload, num_splits=32)
            out = svc.decompress("a", 4, timeout=60)
            assert np.array_equal(
                out, recoil_decompress(svc.serve("a", 4))
            )
            assert (
                svc.metrics_snapshot()["resilience"]["deadline_expired"]
                == 0
            )

    def test_deadline_during_admission_wait(self, payload):
        cfg = ServiceConfig(
            batch_window_s=0.5,
            max_inflight_symbols=1,
            admission_timeout_s=30.0,
        )
        with RecoilService(config=cfg) as svc:
            svc.put_asset("a", payload, num_splits=32)
            first = svc.submit("a", 4)  # admitted while idle
            t0 = time.perf_counter()
            with pytest.raises(DeadlineError, match="admission"):
                svc.submit("a", 4, timeout=0.08)
            # It was the request deadline, not the 30 s admission cap.
            assert time.perf_counter() - t0 < 5.0
            assert np.array_equal(
                first.result(120), recoil_decompress(svc.serve("a", 4))
            )

    def test_non_positive_timeout_rejected(self, payload):
        with RecoilService() as svc:
            svc.put_asset("a", payload, num_splits=32)
            with pytest.raises(ServeError, match="timeout"):
                svc.submit("a", 4, timeout=0.0)

    def test_serve_deadline(self, payload, monkeypatch):
        with RecoilService() as svc:
            svc.put_asset("a", payload, num_splits=32)
            svc.serve("a", 4, timeout=30)  # plenty
            slow = svc.store.shrunk

            def glacial(name, capacity):
                time.sleep(0.05)
                return slow(name, capacity)

            monkeypatch.setattr(svc.store, "shrunk", glacial)
            with pytest.raises(DeadlineError):
                svc.serve("a", 8, timeout=0.01)


# ---------------------------------------------------------------------------
# close() never hangs.
# ---------------------------------------------------------------------------


class TestCloseTimeout:
    def test_wedged_dispatcher_is_reported_not_joined_forever(self):
        cfg = ServiceConfig(close_timeout_s=0.2)
        svc = RecoilService(config=cfg)
        real = svc._dispatcher
        stuck = threading.Thread(
            target=time.sleep, args=(5.0,),
            name="wedged-dispatcher", daemon=True,
        )
        stuck.start()
        svc._dispatcher = stuck
        t0 = time.perf_counter()
        with pytest.raises(ServeError, match="wedged-dispatcher"):
            svc.close()
        assert time.perf_counter() - t0 < 3.0
        assert svc.closed  # close() still completed its teardown
        real.join(10)
        assert not real.is_alive()
        svc.close()  # idempotent after the failure

    def test_clean_close_raises_nothing(self):
        svc = RecoilService(config=ServiceConfig(close_timeout_s=2.0))
        svc.close()
        assert svc.closed


# ---------------------------------------------------------------------------
# The full storm: concurrent clients, faults at every layer.
# ---------------------------------------------------------------------------


class TestConcurrentChaos:
    CLIENTS = 16
    REQUESTS_PER_CLIENT = 3

    @needs_sharding
    def test_sixteen_clients_survive_the_storm(self, payload):
        print(f"chaos seed: {CHAOS_SEED}")  # -s replays a CI failure
        threads_before = threading.active_count()
        cfg = ServiceConfig(
            decode_backend="process",
            decode_workers=2,
            batch_window_s=0.01,
            repromote_cooldown_s=0.2,
        )
        with RecoilService(config=cfg) as svc:
            # One shared model + equal sizes => equal fuse keys, so
            # poison requests genuinely share batches with innocents.
            from repro.rans.model import SymbolModel

            model = SymbolModel.from_data(payload, 11, alphabet_size=256)
            svc.put_asset("a", payload, num_splits=32, model=model)
            svc.put_asset(
                "b", np.roll(payload, 1_000), num_splits=32, model=model
            )
            svc.put_asset(
                "poison", np.roll(payload, 2_000), num_splits=32,
                model=model,
            )
            reference = {
                name: recoil_decompress(svc.serve(name, 4))
                for name in ("a", "b", "poison")
            }
            errors: list[Exception] = []
            bad_bytes: list[str] = []
            lock = threading.Lock()

            def client(idx: int) -> None:
                names = ["a", "b", "poison"]
                for i in range(self.REQUESTS_PER_CLIENT):
                    name = names[(idx + i) % len(names)]
                    try:
                        out = svc.decompress(name, 4, timeout=120)
                    except ReproError as exc:
                        with lock:
                            errors.append(exc)
                        continue
                    if not np.array_equal(out, reference[name]):
                        with lock:
                            bad_bytes.append(name)

            rules = [
                faults.inject(
                    faults.WORKER_CRASH, p=0.05, seed=CHAOS_SEED
                ),
                faults.inject(
                    faults.PIPE_RECV, p=0.05, seed=CHAOS_SEED + 1
                ),
                faults.inject(
                    faults.SHM_ALLOC, p=0.05, seed=CHAOS_SEED + 2
                ),
                faults.inject(
                    faults.PIPE_SEND, p=0.02, seed=CHAOS_SEED + 3
                ),
                faults.inject(faults.BATCH_DISPATCH, nth=4),
                faults.inject(
                    faults.SERVE_REQUEST, p=1.0, key="poison"
                ),
            ]
            from contextlib import ExitStack

            with ExitStack() as stack:
                for rule in rules:
                    stack.enter_context(rule)
                workers = [
                    threading.Thread(target=client, args=(i,), daemon=True)
                    for i in range(self.CLIENTS)
                ]
                for t in workers:
                    t.start()
                for t in workers:
                    t.join(timeout=300)
                    assert not t.is_alive(), "client thread hung"

            # Correctness: NEVER wrong bytes, under any injected fault.
            assert bad_bytes == []
            # Only the poisoned asset may fail, and only with the
            # typed injection error (infrastructure faults are healed
            # transparently; the batchmates never see them).
            assert all(isinstance(e, FaultInjected) for e in errors), errors
            # Every poisoned request failed; each client hit the
            # poison asset exactly once.
            assert len(errors) == self.CLIENTS
            snap = svc.metrics_snapshot()
            total = self.CLIENTS * self.REQUESTS_PER_CLIENT
            assert snap["requests"]["submitted"] == total
            assert (
                snap["requests"]["completed"]
                + snap["requests"]["failed"]
                == total
            )
            assert snap["requests"]["failed"] == len(errors)
            assert snap["resilience"]["poison_batches"] >= 1
        # Nothing leaked, nothing left running.
        assert _leaked_segments() == []
        deadline = time.monotonic() + 10
        while threading.active_count() > threads_before:
            if time.monotonic() > deadline:
                pytest.fail(
                    f"threads leaked: {threading.enumerate()}"
                )
            time.sleep(0.05)

    def test_fused_backend_storm_no_sharding_needed(self, payload):
        # The same storm shape on the pure in-process backend: only
        # dispatcher-level faults apply, recovery must be identical.
        cfg = ServiceConfig(batch_window_s=0.01)
        with RecoilService(config=cfg) as svc:
            svc.put_asset("a", payload, num_splits=32)
            reference = recoil_decompress(svc.serve("a", 4))
            errors: list[Exception] = []
            lock = threading.Lock()

            def client() -> None:
                for _ in range(self.REQUESTS_PER_CLIENT):
                    try:
                        out = svc.decompress("a", 4, timeout=120)
                    except ReproError as exc:
                        with lock:
                            errors.append(exc)
                        continue
                    assert np.array_equal(out, reference)

            with faults.inject(
                faults.BATCH_DISPATCH, p=0.2, seed=CHAOS_SEED
            ):
                workers = [
                    threading.Thread(target=client, daemon=True)
                    for _ in range(self.CLIENTS)
                ]
                for t in workers:
                    t.start()
                for t in workers:
                    t.join(timeout=300)
                    assert not t.is_alive(), "client thread hung"
            # batch.dispatch faults strike batches, and the solo
            # retries may be struck again — but every failure must be
            # the typed injection error, never corrupt output.
            assert all(isinstance(e, FaultInjected) for e in errors)
            snap = svc.metrics_snapshot()
            total = self.CLIENTS * self.REQUESTS_PER_CLIENT
            assert (
                snap["requests"]["completed"]
                + snap["requests"]["failed"]
                == total
            )
