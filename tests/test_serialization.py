"""Tests for the §4.3 metadata wire format."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bitio import BitReader, BitWriter
from repro.core.metadata import RecoilMetadata, SplitEntry
from repro.core.serialization import (
    metadata_size_bytes,
    parse_metadata,
    read_signed_series,
    read_unsigned_series,
    serialize_metadata,
    write_signed_series,
    write_unsigned_series,
)
from repro.errors import MetadataError


class TestSeries:
    def test_unsigned_roundtrip(self):
        w = BitWriter()
        values = np.array([0, 1, 5, 13])
        write_unsigned_series(w, values)
        out = read_unsigned_series(BitReader(w.to_bytes()), 4)
        assert np.array_equal(out, values)

    def test_all_zero_series_one_bit_each(self):
        """Paper footnote: zeros still use one bit per element."""
        w = BitWriter()
        write_unsigned_series(w, np.zeros(32, dtype=int))
        assert len(w) == 5 + 32  # width field + one bit each

    def test_width_follows_max(self):
        w = BitWriter()
        write_unsigned_series(w, np.array([0, 255]))
        assert len(w) == 5 + 2 * 8

    def test_negative_in_unsigned_rejected(self):
        with pytest.raises(MetadataError):
            write_unsigned_series(BitWriter(), np.array([-1]))

    def test_signed_roundtrip(self):
        w = BitWriter()
        values = np.array([-4, 0, 9, -1])
        write_signed_series(w, values)
        out = read_signed_series(BitReader(w.to_bytes()), 4)
        assert np.array_equal(out, values)

    def test_signed_all_positive_omits_sign_bits(self):
        w1 = BitWriter()
        write_signed_series(w1, np.array([3, 1, 2]))
        w2 = BitWriter()
        write_signed_series(w2, np.array([3, 1, -2]))
        assert len(w1) == 5 + 1 + 3 * 2
        assert len(w2) == 5 + 1 + 3 * (1 + 2)

    @given(st.lists(st.integers(min_value=-(2**31), max_value=2**31),
                    max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_signed_series_property(self, values):
        w = BitWriter()
        arr = np.array(values, dtype=np.int64)
        write_signed_series(w, arr)
        out = read_signed_series(BitReader(w.to_bytes()), len(values))
        assert np.array_equal(out, arr)


def _random_metadata(seed: int, lanes: int = 8, entries: int = 12):
    r = np.random.default_rng(seed)
    made = []
    base = 0
    offset = 0
    for _ in range(entries):
        base += int(r.integers(lanes * 2, lanes * 10))
        offset += int(r.integers(5, 60))
        group = base // lanes + 1
        j = np.arange(lanes)
        indices = (group - 1) * lanes + j + 1
        back = r.integers(0, 3, lanes)  # lanes lag up to 2 groups
        indices = indices - back * lanes
        if indices.min() < 1:
            indices += lanes * 3
            base += lanes * 3
        states = r.integers(1, 1 << 16, lanes).astype(np.uint32)
        made.append(SplitEntry(offset, indices, states))
    # Filter to satisfy the ordering invariant.
    entries_ok = []
    prev_s = 0
    for e in made:
        if e.sync_complete_index > prev_s:
            entries_ok.append(e)
            prev_s = e.split_index
    return RecoilMetadata(base + lanes * 20, offset + 100, lanes, entries_ok)


class TestMetadataSerialization:
    @pytest.mark.parametrize("seed", range(8))
    def test_roundtrip_random(self, seed):
        md = _random_metadata(seed)
        blob = serialize_metadata(md)
        out, consumed = parse_metadata(blob)
        assert consumed == len(blob)
        assert out.num_symbols == md.num_symbols
        assert out.num_words == md.num_words
        assert out.lanes == md.lanes
        assert len(out.entries) == len(md.entries)
        for a, b in zip(out.entries, md.entries):
            assert a.word_offset == b.word_offset
            assert np.array_equal(a.lane_indices, b.lane_indices)
            assert np.array_equal(a.lane_states, b.lane_states)

    def test_empty_metadata(self):
        md = RecoilMetadata(100, 50, 4, [])
        blob = serialize_metadata(md)
        out, consumed = parse_metadata(blob)
        assert consumed == len(blob)
        assert out.entries == []

    def test_trailing_data_untouched(self):
        md = _random_metadata(3)
        blob = serialize_metadata(md) + b"PAYLOAD"
        out, consumed = parse_metadata(blob)
        assert blob[consumed:] == b"PAYLOAD"

    def test_offset_parsing(self):
        md = _random_metadata(4)
        blob = b"\xde\xad" + serialize_metadata(md)
        out, consumed = parse_metadata(blob, offset=2)
        assert len(out.entries) == len(md.entries)

    def test_oversized_state_rejected(self):
        e = SplitEntry(
            5,
            np.arange(1, 5),
            np.array([1 << 16, 1, 1, 1], dtype=np.uint32),
        )
        md = RecoilMetadata(100, 50, 4, [e])
        with pytest.raises(MetadataError):
            serialize_metadata(md)

    def test_size_accounting_matches(self):
        md = _random_metadata(5)
        assert metadata_size_bytes(md) == len(serialize_metadata(md))

    def test_compactness(self):
        """Paper target: tens of bytes per split for 32 lanes (vs
        132 B/partition for Conventional)."""
        md = _random_metadata(6, lanes=32, entries=40)
        per_entry = (metadata_size_bytes(md) - 8) / max(len(md.entries), 1)
        assert per_entry < 100  # 64B states + ~20B diffs + share of header

    def test_states_dominate_size(self):
        """The 16-bit states are the bulk — everything else is squeezed
        by the difference coding."""
        md = _random_metadata(7, lanes=32, entries=30)
        size = metadata_size_bytes(md)
        state_bytes = 2 * 32 * len(md.entries)
        assert state_bytes > 0.6 * size
