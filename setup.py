"""Shim for legacy editable installs in offline environments lacking
the ``wheel`` package (configuration lives in pyproject.toml)."""
from setuptools import setup

setup()
