"""Shared fixtures for the benchmark harness.

Benchmarks run on small dataset slices (the ``ci`` profile and below)
so ``pytest benchmarks/ --benchmark-only`` completes in minutes; the
full-scale regeneration path is ``recoil-bench --profile default``.
Each bench module regenerates one paper table/figure's *numbers* (size
deltas, throughput projections) and additionally times the hot
operations with pytest-benchmark.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import exponential_bytes, text_surrogate
from repro.rans.adaptive import StaticModelProvider
from repro.rans.model import SymbolModel


@pytest.fixture(scope="session")
def bench_bytes() -> np.ndarray:
    """300 KB of enwik-like bytes — the standard bench payload."""
    return text_surrogate(300_000, target_entropy=5.29, seed=77)


@pytest.fixture(scope="session")
def bench_rand() -> np.ndarray:
    """300 KB of rand_100-like bytes."""
    return exponential_bytes(300_000, lam=100, seed=78)


@pytest.fixture(scope="session")
def bench_model(bench_bytes) -> SymbolModel:
    return SymbolModel.from_data(bench_bytes, 11, alphabet_size=256)


@pytest.fixture(scope="session")
def bench_provider(bench_model) -> StaticModelProvider:
    return StaticModelProvider(bench_model)
