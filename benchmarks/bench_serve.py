"""Serving-throughput trajectory harness: ``BENCH_serve.json``.

Measures end-to-end multi-client decode throughput of the
content-delivery service (``repro.serve``) at 1/8/64 concurrent
clients of mixed capacities, batched (cross-request fusion into one
wide-lane kernel per geometry group) vs. unbatched (one
``recoil_decompress`` at a time — the pre-subsystem baseline).  All
batched responses are verified bit-identical to ``recoil_decompress``
before timing.

The JSON this emits is the serving perf trajectory future PRs regress
against; CI runs it in smoke mode and gates on
``speedup_batched_vs_unbatched_max_clients``.  Usage::

    python benchmarks/bench_serve.py [--symbols 200000]
        [--clients 1 8 64] [--repeats 2] [--out BENCH_serve.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib

from repro.serve.bench import render_table, run_serve_bench


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--symbols", type=int, default=200_000)
    ap.add_argument("--clients", type=int, nargs="+", default=[1, 8, 64])
    ap.add_argument("--repeats", type=int, default=2)
    ap.add_argument("--backend", default="fused",
                    choices=("fused", "thread", "process"),
                    help="service batch-execution backend for the sweep")
    ap.add_argument("--workers", type=int, default=8,
                    help="fan-out worker count for the backend sections")
    ap.add_argument(
        "--out",
        default=str(pathlib.Path(__file__).resolve().parents[1]
                    / "BENCH_serve.json"),
    )
    args = ap.parse_args(argv)

    result = run_serve_bench(
        symbols=args.symbols,
        clients=tuple(args.clients),
        repeats=args.repeats,
        backend=args.backend,
        workers=args.workers,
    )
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(render_table(result))
    print(json.dumps(result["clients"], indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
