"""Figure 3 regeneration: compressed size vs number of sub-sequences.

Asserts the paper's monotone size growth with partition count and
times the Conventional encoder at each partitioning level.
"""

from __future__ import annotations

import pytest

from repro.baselines import ConventionalCodec
from repro.experiments import figure3

PARTITIONS = [1, 16, 2176]


@pytest.fixture(scope="module")
def figure3_result():
    return figure3.run(profile="ci")


def test_figure3_shape(figure3_result):
    """More sub-sequences -> strictly larger files (paper Fig. 3)."""
    sizes = figure3_result.sizes
    assert sizes[0] < sizes[1] < sizes[2]
    # The 2176-way variation must dominate the 16-way overhead by far.
    d16 = sizes[1] - sizes[0]
    d2176 = sizes[2] - sizes[0]
    assert d2176 > 20 * d16


def test_figure3_report(figure3_result, capsys):
    print()
    print(figure3_result.table)
    assert figure3_result.table.rows


@pytest.mark.parametrize("partitions", PARTITIONS)
def test_bench_conventional_encode(
    benchmark, bench_bytes, bench_provider, partitions
):
    """Time Conventional encoding at each Figure-3 partition count."""
    codec = ConventionalCodec(bench_provider)
    blob = benchmark(codec.compress, bench_bytes, partitions)
    assert len(blob) > 0
