"""Table 5 regeneration (n=11): variation size deltas + shrink timing.

Asserts the paper's §5.2 claims on a dataset subset and times the
server-side operations: Recoil encode-with-metadata and the real-time
split combining (which the paper requires to be lightweight enough to
run per request).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RecoilCodec, recoil_shrink
from repro.experiments import tables56
from repro.experiments.common import build_variations

DATASETS = ["rand_100", "rand_500", "dickens", "enwik8"]


@pytest.fixture(scope="module")
def table5_result():
    return tables56.run(11, profile="ci", datasets=DATASETS)


def test_recoil_beats_conventional_large(table5_result):
    """Recoil Large (c) < Conventional Large (b) on EVERY dataset."""
    for name, art in table5_result.artifacts.items():
        assert art.sizes["c"] < art.sizes["b"], name


def test_small_variants_negligible(table5_result):
    """Small variants must stay far below the Large overheads.

    The Recoil bound is looser: at CI scale the most compressible
    dataset (rand_500) only supports a few hundred splits, shrinking
    the Large metadata the Small cost is compared against.
    """
    for name, art in table5_result.artifacts.items():
        assert art.delta("d") < 0.05 * art.delta("b"), name
        assert art.delta("e") < 0.12 * art.delta("c"), name


def test_recoil_small_beats_conventional_small(table5_result):
    for name, art in table5_result.artifacts.items():
        assert art.sizes["e"] <= art.sizes["d"], name


def test_overhead_grows_with_compressibility(table5_result):
    """Percent overhead of (b) grows as the base size shrinks —
    rand_500 is the paper's worst case."""
    arts = table5_result.artifacts
    assert (
        arts["rand_500"].delta_percent("b")
        > arts["rand_100"].delta_percent("b")
        > arts["enwik8"].delta_percent("b")
    )


def test_table5_report(table5_result):
    print()
    print(table5_result.table)
    name, saving = tables56.headline_saving(table5_result)
    print(f"headline saving: {saving:.2f}% on {name}")
    assert saving < 0  # serving (e) must beat serving (b)


def test_bench_recoil_encode_large(benchmark, bench_bytes, bench_provider):
    codec = RecoilCodec(bench_provider)
    blob = benchmark(codec.compress, bench_bytes, 512)
    assert len(blob) < len(bench_bytes)


def test_bench_shrink(benchmark, bench_bytes, bench_provider):
    """The per-request server operation: must be metadata-speed."""
    codec = RecoilCodec(bench_provider)
    blob = codec.compress(bench_bytes, 512)
    small = benchmark(recoil_shrink, blob, 16)
    assert len(small) < len(blob)


def test_bench_build_all_variations(benchmark, bench_rand):
    """End-to-end Table-5 row build for one dataset."""
    art = benchmark(
        build_variations, "rand_100", bench_rand, 11,
        large=256, small=16, include_multians=False,
    )
    assert art.sizes["c"] < art.sizes["b"]
