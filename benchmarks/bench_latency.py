"""Open-loop tail-latency harness: ``BENCH_latency.json``.

Drives the network front-end (``repro.serve.net``) with the open-loop
load generator (``repro.serve.loadgen``): Poisson arrivals at a fixed
offered rate, Zipf asset popularity, mixed client capacities, and
hostile personas (slow readers, kill -9'd clients) — once clean and
once under a ``net.*`` + ``worker.crash`` chaos spec, side by side.
Latency is measured from each request's *scheduled* arrival, so server
queueing counts against the tail (no coordinated omission — see
docs/BENCHMARKS.md).  Every verified response in both runs must be
bit-identical to the stored symbols or the harness raises.

The JSON this emits is the latency trajectory future PRs regress
against; CI runs a short clean smoke and gates on p99 + zero protocol
errors.  Usage::

    python benchmarks/bench_latency.py [--symbols 50000] [--rate 100]
        [--duration 2.0] [--faults SPEC|none] [--trace trace.json]
        [--out BENCH_latency.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib

from repro.serve.loadgen import render_load_table, run_load_bench

#: default chaos spec for the faulted run: all four net.* points plus
#: a worker crash, the ISSUE 7 acceptance mix.
DEFAULT_FAULTS = (
    "net.accept:p=0.05,net.read:p=0.05,net.write:p=0.05,"
    "net.stall:p=0.1,worker.crash:nth=2"
)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--symbols", type=int, default=50_000)
    ap.add_argument("--assets", type=int, default=4)
    ap.add_argument("--splits", type=int, default=64)
    ap.add_argument("--rate", type=float, default=100.0,
                    help="offered request rate (Poisson arrivals, Hz)")
    ap.add_argument("--duration", type=float, default=2.0,
                    help="open-loop run length (s) per condition")
    ap.add_argument("--backend", default="fused",
                    choices=("fused", "thread", "process"))
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--faults", default=DEFAULT_FAULTS,
                    help="chaos spec for the faulted run; 'none' skips it")
    ap.add_argument("--seed", type=int, default=11)
    ap.add_argument("--trace", default=None, metavar="FILE",
                    help="also write a Perfetto-loadable Chrome trace "
                    "of the run (spans from accept to worker to write)")
    ap.add_argument(
        "--out",
        default=str(pathlib.Path(__file__).resolve().parents[1]
                    / "BENCH_latency.json"),
    )
    args = ap.parse_args(argv)

    faults = None if args.faults in (None, "", "none") else args.faults
    if faults and "worker.crash" in faults and args.backend != "process":
        from repro.parallel.shards import sharding_available

        if sharding_available():
            args.backend = "process"  # worker.crash needs real workers
        else:
            faults = ",".join(
                rule for rule in faults.split(",")
                if not rule.startswith("worker.")
            )

    result = run_load_bench(
        symbols=args.symbols,
        num_assets=args.assets,
        num_splits=args.splits,
        rate_hz=args.rate,
        duration_s=args.duration,
        backend=args.backend,
        workers=args.workers,
        faults=faults,
        seed=args.seed,
        trace_path=args.trace,
    )
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(render_load_table(result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
