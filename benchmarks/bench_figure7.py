"""Figure 7 regeneration: decode throughput on device profiles.

Runs the real decode work for each variation, asserts the paper's
throughput *ordering* (Recoil ≈ Conventional ≫ Single-Thread on CPU;
both ≫ multians on GPU; multians collapses at n=16), and times the
actual Python lane-engine decodes with pytest-benchmark.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ConventionalCodec
from repro.core import RecoilCodec, parse_container
from repro.core.decoder import RecoilDecoder
from repro.experiments import figure7
from repro.tans import MultiansCodec, TansTable

DATASETS = ["rand_100", "enwik8"]


@pytest.fixture(scope="module")
def fig7_n11():
    return figure7.run(11, profile="ci", datasets=DATASETS)


@pytest.fixture(scope="module")
def fig7_n16():
    return figure7.run(
        16, profile="ci", datasets=DATASETS, multians_decode_cap=200_000
    )


def test_cpu_ordering(fig7_n11):
    """Conventional ≈ Recoil ≫ Single-Thread, per dataset (CPU)."""
    for name in DATASETS:
        st = fig7_n11.series("Single-Thread AVX512", "cpu")[name]
        conv = fig7_n11.series("Conventional AVX512", "cpu")[name]
        rec = fig7_n11.series("Recoil AVX512", "cpu")[name]
        assert conv > 5 * st, name
        assert rec > 5 * st, name
        assert abs(rec - conv) / conv < 0.25, name  # "comparable"


def test_avx512_beats_avx2(fig7_n11):
    for name in DATASETS:
        assert (
            fig7_n11.series("Recoil AVX512", "cpu")[name]
            > fig7_n11.series("Recoil AVX2", "cpu")[name]
        )


def test_gpu_ordering(fig7_n11):
    """Recoil and Conventional far outperform multians on GPU."""
    for name in DATASETS:
        mult = fig7_n11.series("multians", "gpu")[name]
        conv = fig7_n11.series("Conventional CUDA", "gpu")[name]
        rec = fig7_n11.series("Recoil CUDA", "gpu")[name]
        assert conv > 3 * mult, name
        assert rec > 3 * mult, name


def test_multians_collapses_at_n16(fig7_n11, fig7_n16):
    """The n=16 state count destroys multians throughput (Fig. 7)."""
    for name in DATASETS:
        n11 = fig7_n11.series("multians", "gpu")[name]
        n16 = fig7_n16.series("multians", "gpu")[name]
        assert n16 < 0.5 * n11, (name, n11, n16)


def test_figure7_report(fig7_n11):
    print()
    print(fig7_n11.cpu_table)
    print()
    print(fig7_n11.gpu_table)


# ---------------------------------------------------------------------------
# Wall-clock benchmarks of the actual Python decoders.
# ---------------------------------------------------------------------------


def test_bench_recoil_decode_batched(benchmark, bench_bytes, bench_provider):
    """The massively-batched lane engine (GPU-analog) decode."""
    codec = RecoilCodec(bench_provider)
    blob = codec.compress(bench_bytes, 512)
    out = benchmark(codec.decompress, blob)
    assert np.array_equal(out, bench_bytes)


def test_bench_recoil_decode_16way(benchmark, bench_bytes, bench_provider):
    """CPU-small-variation decode (16 threads)."""
    codec = RecoilCodec(bench_provider)
    blob = codec.shrink(codec.compress(bench_bytes, 512), 16)
    out = benchmark(codec.decompress, blob)
    assert np.array_equal(out, bench_bytes)


def test_bench_conventional_decode(benchmark, bench_bytes, bench_provider):
    codec = ConventionalCodec(bench_provider)
    blob = codec.compress(bench_bytes, 16)
    out = benchmark(codec.decompress, blob)
    assert np.array_equal(out, bench_bytes)


def test_bench_multians_decode(benchmark, bench_rand):
    table = TansTable.from_data(bench_rand, 12, alphabet_size=256)
    mc = MultiansCodec(table)
    blob = mc.compress(bench_rand[:150_000])

    def decode():
        out, _ = mc.decompress(blob, num_threads=32)
        return out

    out = benchmark(decode)
    assert np.array_equal(out, bench_rand[:150_000])
