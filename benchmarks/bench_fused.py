"""Decode-throughput trajectory harness: ``BENCH_decode.json``.

Measures wall-clock symbols/second of every decoder tier on the
Figure 7 CPU workload (entropy-matched enwik8 surrogate, n=11, K=32):

- ``scalar``       — the single-state pure-Python reference decoder;
- ``interleaved``  — one 32-lane coder, full-stream decode (fused);
- ``pooled``       — 8 recoil tasks on 8 real threads (fused engines);
- ``sharded``      — the same 8 tasks on 8 shard *processes* over
  shared memory (``decode_with_pool(backend="process")``);
- ``fused``        — 8 recoil tasks, one fused wide-lane kernel;
- ``seed_engine``  — the same 8 tasks on the pre-fusion reference
  engine (``LaneEngine.run_reference``), i.e. the seed hot path.

The ``backend_shootout`` section compares the thread and process
fan-out backends on the same LPT shard plan (measured wall-clock,
plus symmetric solo-shard makespans for the clearly-labelled
projection — docs/BENCHMARKS.md); CI gates on its measured
``speedup_process_vs_thread`` (the parallel-edge threshold applies
only on runners with enough cores to express it).

The ``compiled`` section re-times the fused decode with the inner
loop on the compiled kernel twin (DESIGN.md §19) when a toolchain
(numba or a C compiler) is present; the section always records
``available``/``toolchain`` so a fallback run is visible in the JSON.

The JSON this emits is the perf trajectory future PRs regress
against; CI runs it in smoke mode.  Usage::

    python benchmarks/bench_fused.py [--symbols 300000] [--threads 8]
        [--repeats 3] [--out BENCH_decode.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

import numpy as np

from repro.core.decoder import RecoilDecoder, build_thread_tasks
from repro.core.encoder import RecoilEncoder
from repro.data import text_surrogate
from repro.parallel import compiled
from repro.parallel.executor import decode_with_pool
from repro.rans.adaptive import StaticModelProvider
from repro.rans.interleaved import InterleavedDecoder, InterleavedEncoder
from repro.rans.model import SymbolModel
from repro.rans.scalar import ScalarDecoder, ScalarEncoder
from repro.stats.timing import measure_backend_shootout

QUANT_BITS = 11
LANES = 32
SCALAR_CAP = 30_000  # the pure-Python decoder is ~1000x slower


def _rate(fn, check, repeats: int) -> float:
    """Best-of-N symbols/second for ``fn() -> symbol array``."""
    out = fn()
    check(out)  # correctness before speed
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return len(out) / best


def run(symbols: int, threads: int, repeats: int) -> dict:
    data = text_surrogate(symbols, target_entropy=5.29, seed=77)
    model = SymbolModel.from_data(data, QUANT_BITS, alphabet_size=256)
    provider = StaticModelProvider(model)

    def check(expect):
        def _check(out):
            if not np.array_equal(np.asarray(out, np.uint8), expect):
                raise AssertionError("decode mismatch in benchmark")
        return _check

    rates: dict[str, float] = {}

    # -- scalar ---------------------------------------------------------
    small = data[:SCALAR_CAP]
    s_enc = ScalarEncoder(model).encode(small)
    s_dec = ScalarDecoder(model)
    rates["scalar"] = _rate(
        lambda: s_dec.decode(s_enc.words, s_enc.final_state, len(small)),
        check(small),
        repeats,
    )

    # -- interleaved (one coder, fused full-stream decode) --------------
    i_enc = InterleavedEncoder(provider, LANES).encode(data)
    i_dec = InterleavedDecoder(provider, LANES)
    rates["interleaved"] = _rate(
        lambda: i_dec.decode(i_enc.words, i_enc.final_states, len(data)),
        check(data),
        repeats,
    )

    # -- recoil tasks at the requested thread count ---------------------
    enc = RecoilEncoder(provider, LANES).encode(
        data, num_threads=max(threads, 2)
    )
    md = enc.metadata.combine(threads)
    tasks = build_thread_tasks(md, len(enc.words), enc.final_states)
    decoder = RecoilDecoder(provider, LANES)

    rates["pooled"] = _rate(
        lambda: decode_with_pool(
            provider, LANES, enc.words, tasks, enc.num_symbols,
            np.uint8, threads,
        ).symbols,
        check(data),
        repeats,
    )
    rates["sharded"] = _rate(
        lambda: decode_with_pool(
            provider, LANES, enc.words, tasks, enc.num_symbols,
            np.uint8, threads, backend="process",
        ).symbols,
        check(data),
        repeats,
    )
    rates["fused"] = _rate(
        lambda: decoder.decode(
            enc.words, enc.final_states, md, engine="fused"
        ).symbols,
        check(data),
        repeats,
    )
    rates["seed_engine"] = _rate(
        lambda: decoder.decode(
            enc.words, enc.final_states, md, engine="reference"
        ).symbols,
        check(data),
        repeats,
    )

    # -- decoder-adaptive sweep: the Figure 7 "wider ⇒ faster" curve ----
    wide = RecoilEncoder(provider, LANES).encode(data, num_threads=32)
    sweep: dict[str, dict[str, float]] = {}
    for t in (1, 8, 16, 32):
        md_t = wide.metadata.combine(t)
        sweep[str(t)] = {
            "fused": round(_rate(
                lambda: decoder.decode(
                    wide.words, wide.final_states, md_t, engine="fused"
                ).symbols,
                check(data),
                max(repeats - 1, 1),
            ), 1),
            "seed_engine": round(_rate(
                lambda: decoder.decode(
                    wide.words, wide.final_states, md_t,
                    engine="reference",
                ).symbols,
                check(data),
                max(repeats - 1, 1),
            ), 1),
        }

    # -- backend shootout: thread vs process fan-out, same shard plan --
    shootout = measure_backend_shootout(
        provider, LANES, enc.words, tasks, enc.num_symbols, np.uint8,
        workers=threads, repeats=repeats, expected=data,
    )

    # -- compiled kernel column (DESIGN.md §19) -------------------------
    # Same fused decode, inner loop on the compiled twin.  Warm-up
    # happens before timing; the compile-event counter must stay
    # frozen across the timed region or the measurement is invalid.
    compiled_col: dict = {
        "available": compiled.kernel_available(),
        "toolchain": compiled.toolchain(),
    }
    if compiled.kernel_available():
        compiled.warm_up()
        events = compiled.compile_events()
        compiled_rate = _rate(
            lambda: decoder.decode(
                enc.words, enc.final_states, md, engine="compiled"
            ).symbols,
            check(data),
            repeats,
        )
        if compiled.compile_events() != events:
            raise AssertionError("compile landed inside a timed region")
        compiled_col["symbols_per_sec"] = {
            "numpy": round(rates["fused"], 1),
            "compiled": round(compiled_rate, 1),
        }
        compiled_col["speedup_compiled_vs_numpy"] = round(
            compiled_rate / rates["fused"], 3
        )

    return {
        "workload": {
            "dataset": "enwik8-surrogate (Figure 7 CPU panel)",
            "symbols": symbols,
            "quant_bits": QUANT_BITS,
            "lanes": LANES,
            "scalar_cap": SCALAR_CAP,
        },
        "threads": threads,
        "symbols_per_sec": {k: round(v, 1) for k, v in rates.items()},
        "speedup_fused_vs_seed": round(
            rates["fused"] / rates["seed_engine"], 3
        ),
        "backend_shootout": shootout,
        "speedup_process_vs_thread": shootout[
            "speedup_process_vs_thread"
        ],
        "threads_sweep_symbols_per_sec": sweep,
        "compiled": compiled_col,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--symbols", type=int, default=300_000)
    ap.add_argument("--threads", type=int, default=8)
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument(
        "--out",
        default=str(pathlib.Path(__file__).resolve().parents[1]
                    / "BENCH_decode.json"),
    )
    args = ap.parse_args(argv)

    result = run(args.symbols, args.threads, args.repeats)
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(json.dumps(result, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
