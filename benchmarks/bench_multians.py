"""multians decode-throughput harness: ``BENCH_multians.json``.

Measures wall-clock symbols/second of the self-synchronizing tANS
baseline on the Figure 7 GPU-panel workload (entropy-matched enwik8
surrogate, n=11 -> 2**12 states, 256 decoder threads):

- ``seed``  — ``MultiansCodec.parallel_decode_reference``: the seed
  commit's pipeline (per-thread window mat-vec speculative pass, dict
  position maps, per-bit stitch loops), kept in-tree as the
  differential twin;
- ``fused`` — ``MultiansCodec.parallel_decode``: the fused wide-lane
  kernel (``repro.tans.fused``) — one ``(P,)``-wide state vector per
  step, 24-bit window gathers, wide synchronization search, array
  stitch.

Both paths are verified bit-identical (symbols *and* overlap stats)
before timing.  The collapse point (2**16 states, where chunks stop
synchronizing and multians degrades by design) and the single-stream
serial decode are reported alongside; ``speedup_fused_vs_seed`` is
the tracked headline.  CI runs this in smoke mode.  Usage::

    python benchmarks/bench_multians.py [--symbols 300000]
        [--repeats 3] [--threads 256] [--out BENCH_multians.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

import numpy as np

from repro.data import text_surrogate
from repro.tans import MultiansCodec, TansDecoder, TansEncoder, TansTable

ENTROPY = 5.29  # enwik8 surrogate, Table 4
THREADS = 256  # figure7's GPU-panel thread count


def _rate(fn, n_symbols, repeats: int) -> float:
    """Best-of-N symbols/second for ``fn``."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return n_symbols / best


def _verify(codec, enc, table, threads, data) -> None:
    out_f, st_f = codec.parallel_decode(enc, table, threads)
    out_r, st_r = codec.parallel_decode_reference(enc, table, threads)
    if not np.array_equal(out_f, data):
        raise AssertionError("fused multians decode is wrong")
    if not np.array_equal(out_f, out_r):
        raise AssertionError("fused and seed decodes disagree")
    if not np.array_equal(st_f.overlap_symbols, st_r.overlap_symbols):
        raise AssertionError("fused and seed overlap stats disagree")
    if st_f.unsynced_threads != st_r.unsynced_threads:
        raise AssertionError("fused and seed unsynced counts disagree")


def run(symbols: int, repeats: int, threads: int) -> dict:
    data = text_surrogate(symbols, target_entropy=ENTROPY, seed=77)
    N = len(data)
    result: dict = {
        "workload": "figure7-gpu-panel (enwik8 surrogate)",
        "symbols": N,
        "threads": threads,
        "entropy_bits": ENTROPY,
        "verified_bit_identical": True,
    }

    for table_bits, key in ((12, "sync"), (16, "collapse")):
        table = TansTable.from_data(data, table_bits, alphabet_size=256)
        codec = MultiansCodec(table)
        enc, _ = codec.parse(codec.compress(data))
        _verify(codec, enc, table, threads, data)
        fused = _rate(
            lambda: codec.parallel_decode(enc, table, threads), N, repeats
        )
        seed = _rate(
            lambda: codec.parallel_decode_reference(enc, table, threads),
            N, repeats,
        )
        _, stats = codec.parallel_decode(enc, table, threads)
        result[key] = {
            "table_bits": table_bits,
            "fused_sym_per_s": round(fused),
            "seed_sym_per_s": round(seed),
            "speedup": round(fused / seed, 2),
            "unsynced_threads": stats.unsynced_threads,
            "total_overlap_symbols": stats.total_overlap,
        }

    # Single-stream serial decode: the staged-trajectory sweep vs the
    # seed per-symbol loop (dependency-bound, so gains are modest).
    table = TansTable.from_data(data, 12, alphabet_size=256)
    enc1 = TansEncoder(table).encode(data)
    dec = TansDecoder(table)
    if not np.array_equal(dec.decode(enc1), data):
        raise AssertionError("staged single-stream decode is wrong")
    staged = _rate(lambda: dec.decode(enc1), N, repeats)
    seed1 = _rate(lambda: dec.decode(enc1, engine="reference"), N, repeats)
    result["single_stream"] = {
        "staged_sym_per_s": round(staged),
        "seed_sym_per_s": round(seed1),
        "speedup": round(staged / seed1, 2),
    }

    result["speedup_fused_vs_seed"] = result["sync"]["speedup"]
    result["speedup_fused_vs_seed_collapse"] = result["collapse"]["speedup"]
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--symbols", type=int, default=300_000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--threads", type=int, default=THREADS)
    parser.add_argument("--out", default="BENCH_multians.json")
    args = parser.parse_args(argv)

    result = run(args.symbols, args.repeats, args.threads)
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(
        f"\nfused vs seed multians decode at {result['threads']} threads: "
        f"{result['speedup_fused_vs_seed']}x (sync), "
        f"{result['speedup_fused_vs_seed_collapse']}x (collapse)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
