"""Table 6 regeneration (n=16): byte + image datasets, multians dump.

The n=16 specifics: image latents code adaptively; the multians
decode-table dump balloons (2**16 states x 4 B); the rand_500 row is
the paper's −23.41% headline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RecoilCodec, build_container
from repro.data import load_dataset
from repro.experiments import tables56
from repro.tans import TansTable

DATASETS = ["rand_500", "enwik8", "div2k801", "div2k805"]


@pytest.fixture(scope="module")
def table6_result():
    return tables56.run(16, profile="ci", datasets=DATASETS)


def test_recoil_beats_conventional_on_images(table6_result):
    for name in ("div2k801", "div2k805"):
        art = table6_result.artifacts[name]
        assert art.sizes["c"] < art.sizes["b"], name
        assert art.sizes["e"] <= art.sizes["d"], name


def test_multians_table_dump_explodes_at_n16(bench_rand):
    """2**16-state dump is ~16x the 2**12 one (Table 6's multians pain)."""
    t12 = TansTable.from_data(bench_rand, 12, alphabet_size=256)
    t16 = TansTable.from_data(bench_rand, 16, alphabet_size=256)
    assert len(t16.to_bytes()) > 14 * len(t12.to_bytes())
    assert len(t16.to_bytes()) > 250_000  # the paper's ~256 KB uplift


def test_headline_saving_is_on_most_compressible(table6_result):
    name, saving = tables56.headline_saving(table6_result)
    assert saving < 0
    assert name == "rand_500"  # paper: −23.41% on rand_500, n=16


def test_table6_report(table6_result):
    print()
    print(table6_result.table)


def test_bench_recoil_encode_adaptive(benchmark):
    """Time adaptive (image-latent) Recoil encoding at n=16."""
    plane = load_dataset("div2k801", "ci")
    codec = RecoilCodec(plane.provider)

    def encode():
        enc = codec.encode(plane.symbols, 128)
        return build_container(enc, provider=plane.provider, embed_model=False)

    blob = benchmark(encode)
    assert len(blob) < plane.uncompressed_bytes


def test_bench_recoil_decode_adaptive(benchmark):
    plane = load_dataset("div2k801", "ci")
    codec = RecoilCodec(plane.provider)
    enc = codec.encode(plane.symbols, 128)
    blob = build_container(enc, provider=plane.provider, embed_model=False)
    out = benchmark(codec.decompress, blob)
    assert np.array_equal(out, plane.symbols)
