"""Table 4 regeneration: baseline (a) compressed sizes per dataset.

Checks the compressibility ladder of the dataset registry against the
paper's ordering and times the Single-Thread baseline encode/decode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import SingleThreadCodec
from repro.data import load_dataset
from repro.experiments import table4


@pytest.fixture(scope="module")
def table4_result():
    return table4.run(profile="ci")


def test_table4_compressibility_ladder(table4_result):
    """rand_10 > rand_50 > ... > rand_500 compressed sizes (Table 4)."""
    rows = table4_result.rows
    sizes = [rows[f"rand_{l}"]["n11"] for l in (10, 50, 100, 200, 500)]
    assert sizes == sorted(sizes, reverse=True)


def test_table4_text_ratios(table4_result):
    """Text surrogates land near the paper's compressed ratios."""
    rows = table4_result.rows
    for name, paper_ratio in [
        ("dickens", 0.615), ("webster", 0.660),
        ("enwik8", 0.661), ("enwik9", 0.673),
    ]:
        ratio = rows[name]["n11"] / rows[name]["uncompressed"]
        assert abs(ratio - paper_ratio) < 0.05, (name, ratio)


def test_table4_report(table4_result):
    print()
    print(table4_result.table)
    assert len(table4_result.rows) == 12


def test_bench_single_thread_compress(benchmark, bench_bytes, bench_provider):
    codec = SingleThreadCodec(bench_provider)
    blob = benchmark(codec.compress, bench_bytes)
    assert len(blob) < len(bench_bytes)


def test_bench_single_thread_decompress(benchmark, bench_bytes, bench_provider):
    codec = SingleThreadCodec(bench_provider)
    blob = codec.compress(bench_bytes)
    out = benchmark(codec.decompress, blob)
    assert np.array_equal(out, bench_bytes)
