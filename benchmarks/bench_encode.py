"""Encode-throughput trajectory harness: ``BENCH_encode.json``.

Measures wall-clock symbols/second of every encoder tier on the
Figure 7 CPU workload (entropy-matched enwik8 surrogate, n=11, K=32):

- ``seed_loop``   — the seed commit's per-group encode loop
  (reimplemented below verbatim), with event recording: the Recoil
  "encode once, record split metadata" path before this PR;
- ``reference``   — ``InterleavedEncoder.encode_reference`` (the kept
  differential loop, one PR of hoists ahead of the seed);
- ``fused``       — the fused wide-lane encode kernel, events recorded
  in-kernel (single stream: K-wide, dependency-bound);
- ``recoil_full`` — fused pass + split selection + metadata;
- partition sweep — all Conventional partitions fused into one
  ``(P*K,)``-wide kernel call vs the seed loop encoding them one by
  one: the width the fused kernel is designed for, mirroring
  ``bench_fused.py``'s task-fused headline.

``speedup_fused_vs_seed`` (the tracked headline) is the fused kernel
vs the seed loop at the widest sweep point; the single-stream ratio is
reported alongside.  The ``compiled`` section re-times the fused
encode on the compiled kernel twin (DESIGN.md §19) when a toolchain
is present.  CI runs this in smoke mode.  Usage::

    python benchmarks/bench_encode.py [--symbols 300000] [--repeats 3]
        [--out BENCH_encode.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

import numpy as np

from repro.baselines.conventional import ConventionalCodec, partition_bounds
from repro.core.encoder import RecoilEncoder
from repro.data import text_surrogate
from repro.parallel import compiled
from repro.rans.adaptive import StaticModelProvider
from repro.rans.constants import L_BOUND, RENORM_BITS, RENORM_MASK
from repro.rans.interleaved import InterleavedDecoder, InterleavedEncoder
from repro.rans.model import SymbolModel

QUANT_BITS = 11
LANES = 32
PARTITION_SWEEP = (1, 8, 16, 32)


def _seed_encode(provider, lanes, data, record_events=False):
    """The seed commit's ``InterleavedEncoder.encode`` loop, verbatim
    (modulo surrounding class plumbing) — the benchmark baseline."""
    K = lanes
    N = len(data)
    n = provider.quant_bits
    shift = np.uint64(RENORM_BITS + 16 - n)
    rb = np.uint64(RENORM_BITS)
    n64 = np.uint64(n)
    mask16 = np.uint64(RENORM_MASK)

    f_all, cdf_all = provider.gather_freq_cdf(data, start_index=1)

    x = np.full(K, L_BOUND, dtype=np.uint64)
    words = np.empty(N + 8, dtype=np.uint16)
    if record_events:
        ev_sym = np.empty(N + 8, dtype=np.uint64)
        ev_lane = np.empty(N + 8, dtype=np.uint16)
        ev_state = np.empty(N + 8, dtype=np.uint16)
    wc = 0

    num_groups = -(-N // K)
    for g in range(num_groups):
        base = g * K
        cnt = min(K, N - base)
        f = f_all[base : base + cnt]
        cdf = cdf_all[base : base + cnt]
        xs = x[:cnt]
        idx = np.flatnonzero(xs >= (f << shift))
        c = len(idx)
        if c:
            overflowed = xs[idx]
            words[wc : wc + c] = (overflowed & mask16).astype(np.uint16)
            renormed = overflowed >> rb
            x[idx] = renormed
            if record_events:
                ev_sym[wc : wc + c] = base + idx + 1
                ev_lane[wc : wc + c] = idx
                ev_state[wc : wc + c] = renormed.astype(np.uint16)
            wc += c
            xs = x[:cnt]
        q = xs // f
        x[:cnt] = (q << n64) + cdf + (xs - q * f)
    return words[:wc].copy(), x


def _seed_encode_partitions(provider, data, partitions):
    """Seed-style Conventional encode: the seed loop over each
    partition in turn (the seed had no multi-task kernel)."""
    chunks = []
    for start, end in partition_bounds(len(data), partitions):
        words, _ = _seed_encode(provider, LANES, data[start:end])
        chunks.append(words)
    return chunks


def _rate(fn, n_symbols, repeats: int) -> float:
    """Best-of-N symbols/second for ``fn``."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return n_symbols / best


def run(symbols: int, repeats: int) -> dict:
    data = text_surrogate(symbols, target_entropy=5.29, seed=77)
    model = SymbolModel.from_data(data, QUANT_BITS, alphabet_size=256)
    provider = StaticModelProvider(model)
    N = len(data)

    # Correctness before speed: fused == seed loop, and it decodes.
    encoder = InterleavedEncoder(provider, LANES)
    fused = encoder.encode(data, record_events=True)
    seed_words, seed_states = _seed_encode(
        provider, LANES, data, record_events=True
    )
    if not np.array_equal(fused.words, seed_words) or not np.array_equal(
        fused.final_states, seed_states
    ):
        raise AssertionError("fused encode diverged from the seed loop")
    decoded = InterleavedDecoder(provider, LANES).decode(
        fused.words, fused.final_states, N
    )
    if not np.array_equal(decoded, data):
        raise AssertionError("encode/decode round trip failed")

    rates: dict[str, float] = {}
    rates["seed_loop"] = _rate(
        lambda: _seed_encode(provider, LANES, data, record_events=True),
        N, repeats,
    )
    rates["reference"] = _rate(
        lambda: encoder.encode_reference(data, record_events=True),
        N, repeats,
    )
    rates["fused"] = _rate(
        lambda: encoder.encode(data, record_events=True), N, repeats
    )
    recoil = RecoilEncoder(provider, LANES)
    rates["recoil_full"] = _rate(
        lambda: recoil.encode(data, num_threads=8), N, repeats
    )

    # -- the width the kernel is built for: P partitions, one call ------
    codec = ConventionalCodec(provider, LANES)
    sweep: dict[str, dict[str, float]] = {}
    for p in PARTITION_SWEEP:
        fused_r = _rate(lambda p=p: codec.encode(data, p), N, repeats)
        seed_r = _rate(
            lambda p=p: _seed_encode_partitions(provider, data, p),
            N, repeats,
        )
        sweep[str(p)] = {
            "fused": round(fused_r, 1),
            "seed_loop": round(seed_r, 1),
            "speedup": round(fused_r / seed_r, 3),
        }

    # -- compiled kernel column (DESIGN.md §19) -------------------------
    # Same fused encode sweep, inner loop on the compiled twin;
    # warmed before timing, compile counter checked after.
    compiled_col: dict = {
        "available": compiled.kernel_available(),
        "toolchain": compiled.toolchain(),
    }
    if compiled.kernel_available():
        compiled.warm_up()
        events = compiled.compile_events()
        compiled_rate = _rate(
            lambda: encoder.encode(
                data, record_events=True, kernel="compiled"
            ),
            N, repeats,
        )
        if compiled.compile_events() != events:
            raise AssertionError("compile landed inside a timed region")
        compiled_col["symbols_per_sec"] = {
            "numpy": round(rates["fused"], 1),
            "compiled": round(compiled_rate, 1),
        }
        compiled_col["speedup_compiled_vs_numpy"] = round(
            compiled_rate / rates["fused"], 3
        )

    widest = sweep[str(PARTITION_SWEEP[-1])]
    return {
        "workload": {
            "dataset": "enwik8-surrogate (Figure 7 CPU panel)",
            "symbols": symbols,
            "quant_bits": QUANT_BITS,
            "lanes": LANES,
        },
        "symbols_per_sec": {k: round(v, 1) for k, v in rates.items()},
        "speedup_fused_vs_seed_single_stream": round(
            rates["fused"] / rates["seed_loop"], 3
        ),
        "partition_sweep_symbols_per_sec": sweep,
        "speedup_fused_vs_seed": widest["speedup"],
        "compiled": compiled_col,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--symbols", type=int, default=300_000)
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument(
        "--out",
        default=str(pathlib.Path(__file__).resolve().parents[1]
                    / "BENCH_encode.json"),
    )
    args = ap.parse_args(argv)

    result = run(args.symbols, args.repeats)
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(json.dumps(result, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
