"""Ablation benches for Recoil's design choices.

Each ablation isolates one decision the paper motivates and measures
what it buys, on the bench payload:

1. **Lemma 3.1 (16-bit states)** — vs storing raw 32-bit states.
2. **§4.3 difference coding** — vs naive fixed-width metadata.
3. **§4.2 heuristic H(t, ts)** — vs taking the event nearest each
   ideal boundary (window=1 disables the search).
4. **32-way interleaving (Table 3)** — lane-count sweep: compression
   overhead and batched-decode iteration counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decoder import RecoilDecoder, build_thread_tasks
from repro.core.encoder import RecoilEncoder
from repro.core.serialization import metadata_size_bytes
from repro.core.splitter import SplitSelector
from repro.parallel.simd import LaneEngine
from repro.rans.adaptive import StaticModelProvider
from repro.rans.interleaved import InterleavedEncoder


@pytest.fixture(scope="module")
def encoded(bench_bytes, bench_model):
    return RecoilEncoder(bench_model).encode(bench_bytes, num_threads=256)


class TestStateWidthAblation:
    def test_16bit_states_halve_metadata(self, encoded):
        """Lemma 3.1 payoff: the dominant metadata term is the per-lane
        state; bounding it to 16 bits saves ~2 bytes x 32 lanes per
        split vs naive 32-bit storage."""
        md = encoded.metadata
        actual = metadata_size_bytes(md)
        naive_state_bytes = 4 * md.lanes * len(md.entries)
        packed_state_bytes = 2 * md.lanes * len(md.entries)
        saved = naive_state_bytes - packed_state_bytes
        # The whole serialized metadata is smaller than what the naive
        # states alone would cost.
        assert actual < naive_state_bytes
        assert saved == 64 * len(md.entries)


class TestDifferenceCodingAblation:
    def test_difference_coding_beats_naive(self, encoded):
        """§4.3 payoff vs a naive layout (u32 offset + u32 max-index +
        32 x (u16 state + u32 symbol index) per split)."""
        md = encoded.metadata
        actual = metadata_size_bytes(md)
        naive = len(md.entries) * (4 + 4 + md.lanes * (2 + 4))
        assert actual < 0.55 * naive

    def test_size_scales_linearly_with_entries(self, encoded):
        md = encoded.metadata
        half = md.combine(len(md.entries) // 2 + 1)
        full_size = metadata_size_bytes(md)
        half_size = metadata_size_bytes(half)
        ratio = half_size / full_size
        assert 0.35 < ratio < 0.65


class TestHeuristicAblation:
    def test_heuristic_improves_balance_or_sync(self, encoded, bench_bytes):
        """Def 4.1 vs nearest-event splitting: the heuristic must not
        lose on the combined objective |t-T| + |t-ts-T|."""
        ev = encoded
        naive_sel = SplitSelector(
            ev_events := _events(bench_bytes, ev), 32, len(bench_bytes),
            window=1,
        )
        smart_sel = SplitSelector(
            ev_events, 32, len(bench_bytes), window=64
        )
        _, naive_stats = naive_sel.select(64)
        _, smart_stats = smart_sel.select(64)
        # Greedy selection is not pointwise monotone in the window
        # (earlier choices shift later targets), but the heuristic must
        # never be meaningfully worse than nearest-event splitting.
        assert (
            smart_stats.mean_heuristic_cost
            <= naive_stats.mean_heuristic_cost * 1.10
        )

    def test_bench_split_selection(self, benchmark, bench_bytes, encoded):
        """Split selection must stay cheap (server-side, per asset)."""
        events = _events(bench_bytes, encoded)
        sel = SplitSelector(events, 32, len(bench_bytes))
        md, stats = benchmark(sel.select, 256)
        assert stats.achieved_threads > 128


def _events(bench_bytes, encoded):
    # Re-derive events from a fresh encode (RecoilEncoded drops them).
    from repro.rans.interleaved import InterleavedEncoder
    from repro.rans.model import SymbolModel

    model = SymbolModel.from_data(bench_bytes, 11, alphabet_size=256)
    return InterleavedEncoder(model).encode(
        bench_bytes, record_events=True
    ).events


class TestLaneCountAblation:
    @pytest.mark.parametrize("lanes", [8, 16, 32, 64])
    def test_lane_sweep_roundtrip_and_overhead(
        self, bench_bytes, bench_model, lanes
    ):
        """More lanes: more final-state overhead, fewer engine
        iterations (more SIMD parallelism) — Table 3 picks 32 as the
        warp-sized sweet spot."""
        enc = RecoilEncoder(bench_model, lanes=lanes).encode(
            bench_bytes, num_threads=16
        )
        res = RecoilDecoder(bench_model, lanes=lanes).decode(
            enc.words, enc.final_states, enc.metadata
        )
        assert np.array_equal(res.symbols, bench_bytes)

    def test_iterations_scale_inverse_with_lanes(
        self, bench_bytes, bench_model
    ):
        provider = StaticModelProvider(bench_model)
        iters = {}
        for lanes in (8, 32):
            enc = RecoilEncoder(bench_model, lanes=lanes).encode(
                bench_bytes, num_threads=16
            )
            tasks = build_thread_tasks(
                enc.metadata, len(enc.words), enc.final_states
            )
            out = np.empty(len(bench_bytes), dtype=np.uint8)
            stats = LaneEngine(provider, lanes).run(enc.words, tasks, out)
            iters[lanes] = stats.iterations
        assert iters[32] < iters[8] / 2.5

    @pytest.mark.parametrize("lanes", [8, 32])
    def test_bench_decode_by_lanes(
        self, benchmark, bench_bytes, bench_model, lanes
    ):
        provider = StaticModelProvider(bench_model)
        enc = RecoilEncoder(bench_model, lanes=lanes).encode(
            bench_bytes, num_threads=16
        )
        tasks = build_thread_tasks(
            enc.metadata, len(enc.words), enc.final_states
        )

        def decode():
            out = np.empty(len(bench_bytes), dtype=np.uint8)
            LaneEngine(provider, lanes).run(enc.words, tasks, out)
            return out

        out = benchmark(decode)
        assert np.array_equal(out, bench_bytes)
