"""Metadata scaling: bytes/split, decode overhead, shrink latency.

Recoil's economics hinge on the per-split metadata cost staying well
under the Conventional per-partition cost (~132 B at K=32) while the
decode-time sync overhead stays negligible.  This bench sweeps split
counts and pins both, plus the serving-path latencies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ConventionalCodec
from repro.codecs import compress_frames, decompress_frames
from repro.codecs.image_pipeline import HyperpriorImageCodec
from repro.core import RecoilCodec
from repro.core.encoder import RecoilEncoder
from repro.core.serialization import metadata_size_bytes
from repro.data import synthesize_latents

SPLITS = [16, 64, 256, 1024]


@pytest.fixture(scope="module")
def encodes(bench_bytes, bench_model):
    enc = RecoilEncoder(bench_model)
    return {s: enc.encode(bench_bytes, s) for s in SPLITS}


class TestMetadataScaling:
    def test_bytes_per_split_stable(self, encodes):
        """Marginal metadata cost is ~flat in the split count."""
        costs = {}
        for s, enc in encodes.items():
            entries = len(enc.metadata.entries)
            if entries:
                costs[s] = metadata_size_bytes(enc.metadata) / entries
        values = list(costs.values())
        assert max(values) < 100
        assert max(values) / min(values) < 1.4

    def test_recoil_split_cheaper_than_conventional_partition(
        self, encodes, bench_bytes, bench_provider
    ):
        """Per-split metadata < per-partition overhead, always."""
        conv = ConventionalCodec(bench_provider)
        conv_per = conv.encode(bench_bytes, 2).per_partition_overhead_bytes
        for s, enc in encodes.items():
            entries = len(enc.metadata.entries)
            if entries:
                per = metadata_size_bytes(enc.metadata) / entries
                assert per < conv_per, s

    def test_sync_overhead_per_split_constant(self, encodes):
        """Sync cost is ~120 symbols per split (a few K-groups),
        independent of the split count — so at paper scale (10 MB,
        2176 splits) the decode overhead is ~2.6% and shrinks further
        with payload size."""
        for s, enc in encodes.items():
            entries = len(enc.metadata.entries)
            if not entries:
                continue
            per_entry = enc.metadata.sync_overhead_symbols() / entries
            assert per_entry < 8 * 32, s

    @pytest.mark.parametrize("splits", SPLITS)
    def test_bench_metadata_serialize(self, benchmark, encodes, splits):
        from repro.core.serialization import serialize_metadata

        md = encodes[splits].metadata
        blob = benchmark(serialize_metadata, md)
        assert len(blob) > 0


class TestComposedCodecBenches:
    def test_bench_image_pipeline_roundtrip(self, benchmark):
        plane = synthesize_latents(50_000, seed=9)
        codec = HyperpriorImageCodec(plane.bank)
        blob = codec.compress(plane.symbols, plane.scale_ids, 64)

        def roundtrip():
            symbols, ids = codec.decompress(blob)
            return symbols

        out = benchmark(roundtrip)
        assert np.array_equal(out, plane.symbols)

    def test_bench_framed_decompress(self, benchmark, bench_bytes):
        blob = compress_frames(bench_bytes, frame_symbols=60_000,
                               num_splits=64)
        out = benchmark(decompress_frames, blob)
        assert np.array_equal(out, bench_bytes)
