#!/usr/bin/env python3
"""Documentation checks: links resolve, code blocks execute.

Two guarantees for the user-facing docs (README.md, docs/*.md, and
DESIGN.md):

1. every intra-repo markdown link points at a file that exists
   (external ``http(s)``/``mailto`` links and pure ``#anchor`` links
   are skipped; ``#fragment`` suffixes are stripped before checking);
2. every fenced ````` ```python ````` block in README.md and docs/
   runs to completion in a fresh interpreter — the quickstart smoke.
   Shell blocks (````` ```bash `````) are documentation of commands
   with side effects and are *not* executed.

Run from anywhere inside the repo::

    python tools/check_docs.py [--skip-exec]

Exit status 0 on success, 1 with a findings list otherwise.  CI runs
this as the ``docs`` job; ``tests/test_docs.py`` runs the link check
inside the tier-1 suite.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: files whose links are checked.
LINKED_DOCS = ("README.md", "DESIGN.md", "docs")
#: files whose ```python blocks are executed.
EXECUTABLE_DOCS = ("README.md", "docs")

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE = re.compile(r"^```(\w*)\s*$")


def _doc_files(roots) -> list[str]:
    files = []
    for root in roots:
        path = os.path.join(REPO, root)
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for name in sorted(os.listdir(path)):
                if name.endswith(".md"):
                    files.append(os.path.join(path, name))
    return files


def check_links(files: list[str]) -> list[str]:
    """Every relative link target must exist on disk."""
    problems = []
    for path in files:
        base = os.path.dirname(path)
        text = open(path, encoding="utf-8").read()
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = os.path.normpath(os.path.join(base, target))
            if not os.path.exists(resolved):
                problems.append(
                    f"{os.path.relpath(path, REPO)}: broken link "
                    f"-> {match.group(1)}"
                )
    return problems


def python_blocks(path: str) -> list[tuple[int, str]]:
    """``(start_line, source)`` of every fenced python block."""
    blocks = []
    lines = open(path, encoding="utf-8").read().splitlines()
    in_block = False
    lang = ""
    start = 0
    buf: list[str] = []
    for i, line in enumerate(lines, 1):
        fence = _FENCE.match(line)
        if fence and not in_block:
            in_block, lang, start, buf = True, fence.group(1), i + 1, []
        elif line.strip() == "```" and in_block:
            if lang == "python":
                blocks.append((start, "\n".join(buf) + "\n"))
            in_block = False
        elif in_block:
            buf.append(line)
    return blocks


def check_exec(files: list[str]) -> list[str]:
    """Run every python block in a fresh interpreter (repo cwd,
    src/ on the path) and collect failures."""
    problems = []
    env = dict(os.environ)
    src = os.path.join(REPO, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    for path in files:
        for line, source in python_blocks(path):
            with tempfile.NamedTemporaryFile(
                "w", suffix=".py", delete=False
            ) as fh:
                fh.write(source)
                script = fh.name
            try:
                proc = subprocess.run(
                    [sys.executable, script],
                    cwd=REPO,
                    env=env,
                    capture_output=True,
                    text=True,
                    timeout=600,
                )
                if proc.returncode != 0:
                    tail = proc.stderr.strip().splitlines()[-1:]
                    problems.append(
                        f"{os.path.relpath(path, REPO)}:{line}: python "
                        f"block failed ({'; '.join(tail) or 'no stderr'})"
                    )
            finally:
                os.unlink(script)
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--skip-exec", action="store_true",
        help="only check links, do not execute code blocks",
    )
    args = parser.parse_args(argv)

    link_files = _doc_files(LINKED_DOCS)
    problems = check_links(link_files)
    print(f"checked links in {len(link_files)} files")
    if not args.skip_exec:
        exec_files = _doc_files(EXECUTABLE_DOCS)
        blocks = sum(len(python_blocks(f)) for f in exec_files)
        problems += check_exec(exec_files)
        print(f"executed {blocks} python blocks from {len(exec_files)} files")
    for p in problems:
        print(f"FAIL {p}", file=sys.stderr)
    if problems:
        return 1
    print("docs OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
