#!/usr/bin/env python
"""Regenerate the golden-stream corpus under ``tests/golden/``.

The corpus pins the wire format: committed container/blob bytes plus
the exact payload each must decode to.  ``tests/test_golden.py``
asserts byte-exact encode AND decode against these files on every
kernel backend, so any change to the encoders, the container layout,
or the split selector that moves a single wire byte fails loudly.

Run deliberately (a golden diff is a wire-format change and should be
reviewed as one):

    PYTHONPATH=src python tools/make_golden.py
"""

from __future__ import annotations

import hashlib
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "tests")
)

from golden_cases import (  # noqa: E402
    build_rans_blob,
    build_tans_blob,
    rans_cases,
    tans_cases,
)

GOLDEN_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, "tests", "golden"
)


def _sha(b: bytes) -> str:
    return hashlib.sha256(b).hexdigest()


def main() -> int:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    manifest = {"format": 1, "cases": []}
    for case in rans_cases():
        blob = build_rans_blob(case)
        expected = case["payload"].tobytes()
        entry = _write(case["name"], "rans", blob, expected)
        entry["lanes"] = case["lanes"]
        entry["splits"] = case["splits"]
        entry["static"] = bool(case["provider"].is_static)
        manifest["cases"].append(entry)
    for case in tans_cases():
        blob, _ = build_tans_blob(case)
        expected = case["payload"].tobytes()
        entry = _write(case["name"], "tans", blob, expected)
        entry["table_bits"] = case["table_bits"]
        entry["threads"] = list(case["threads"])
        manifest["cases"].append(entry)
    path = os.path.join(GOLDEN_DIR, "manifest.json")
    with open(path, "w") as f:
        json.dump(manifest, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {len(manifest['cases'])} cases to {GOLDEN_DIR}")
    return 0


def _write(name: str, kind: str, blob: bytes, expected: bytes) -> dict:
    with open(os.path.join(GOLDEN_DIR, f"{name}.bin"), "wb") as f:
        f.write(blob)
    with open(
        os.path.join(GOLDEN_DIR, f"{name}.expected.bin"), "wb"
    ) as f:
        f.write(expected)
    return {
        "name": name,
        "kind": kind,
        "blob_sha256": _sha(blob),
        "blob_bytes": len(blob),
        "expected_sha256": _sha(expected),
        "expected_bytes": len(expected),
    }


if __name__ == "__main__":
    sys.exit(main())
