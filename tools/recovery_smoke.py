#!/usr/bin/env python
"""Kill-and-restart recovery smoke: SIGKILL a serving daemon
mid-ingest under ``disk.*`` fault injection, restart it on the same
``--store-dir``, and hold it to the crash-consistency contract
(DESIGN.md §18):

- every asset the restarted server lists as recovered must decode
  BIT-IDENTICALLY to the bytes the client originally put;
- an acked asset may be absent after the crash only because an
  injected ``disk.write``/``disk.fsync`` fault kept it off disk —
  it must be *absent* (typed error), never served wrong;
- deterministically planted damage (a torn tmp file and a truncated
  record) must be quarantined, and the quarantine counters must
  agree with the recovery report.

Run by the CI chaos job with the shared ``REPRO_CHAOS_SEED``; any
failure reproduces with the printed seed:

    python tools/recovery_smoke.py --seed <seed>
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
sys.path.insert(0, str(SRC))

import numpy as np  # noqa: E402

from repro.core.api import recoil_compress  # noqa: E402
from repro.data import text_surrogate  # noqa: E402
from repro.serve import RecoilClient  # noqa: E402
from repro.serve.disk import RECORD_SUFFIX  # noqa: E402


def fail(msg: str) -> None:
    print(f"recovery_smoke: FAIL: {msg}", flush=True)
    raise SystemExit(1)


def start_server(store_dir: Path, faults: str | None, env: dict):
    argv = [
        sys.executable, "-m", "repro.cli", "serve", "--port", "0",
        "--demo-assets", "0", "--store-dir", str(store_dir),
    ]
    if faults:
        argv += ["--faults", faults]
    proc = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env,
    )
    banner, port = [], None
    for line in proc.stdout:
        banner.append(line.rstrip("\n"))
        if "listening on " in line:
            addr = line.split("listening on ")[1].split()[0]
            port = int(addr.rsplit(":", 1)[1])
            break
    if port is None:
        proc.kill()
        fail(f"server never came up: {banner}")
    return proc, port, banner


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int,
                        default=int(os.environ.get("REPRO_CHAOS_SEED", 11)))
    parser.add_argument("--assets", type=int, default=10)
    parser.add_argument("--symbols", type=int, default=6000)
    parser.add_argument("--kill-after-s", type=float, default=0.6)
    parser.add_argument("--store-dir", default=None)
    args = parser.parse_args()
    print(f"recovery_smoke: seed {args.seed}", flush=True)

    root = Path(args.store_dir or tempfile.mkdtemp(prefix="recoil-smoke-"))
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")

    datasets, blobs = {}, {}
    for i in range(args.assets):
        name = f"smoke{i}"
        datasets[name] = text_surrogate(
            args.symbols, target_entropy=5.29, seed=args.seed + i
        )
        blobs[name] = recoil_compress(
            datasets[name], num_splits=8, quant_bits=11
        )

    # -- phase 1: ingest under disk chaos, then SIGKILL ---------------
    spec = (
        f"disk.write:p=0.15:seed={args.seed},"
        f"disk.fsync:p=0.1:seed={args.seed + 1}"
    )
    proc, port, _ = start_server(root, spec, env)
    killer = threading.Timer(
        args.kill_after_s, lambda: proc.send_signal(signal.SIGKILL)
    )
    killer.start()
    acked: list[str] = []
    try:
        with RecoilClient("127.0.0.1", port, timeout_s=30) as client:
            for name, blob in blobs.items():
                client.put_container(name, blob)
                acked.append(name)
                time.sleep(0.02)  # keep ingest spanning the kill
    except (ConnectionError, OSError, TimeoutError):
        pass  # the kill landed mid-conversation: that is the point
    finally:
        killer.cancel()
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    print(f"recovery_smoke: acked {len(acked)}/{len(blobs)} puts "
          "before SIGKILL", flush=True)
    if not acked:
        fail("no puts acked before the kill; raise --kill-after-s")

    # -- phase 2: plant deterministic damage --------------------------
    planted = 0
    (root / "tmp").mkdir(exist_ok=True)
    (root / "tmp" / "torn.999.part").write_bytes(b"interrupted mid-write")
    planted += 1
    victim = None
    records = sorted((root / "assets").glob(f"*{RECORD_SUFFIX}"))
    if records:
        victim = records[0]
        data = victim.read_bytes()
        victim.write_bytes(data[: max(1, len(data) // 2)])
        planted += 1
    print(f"recovery_smoke: planted {planted} damaged files "
          f"(victim: {victim.name if victim else None})", flush=True)

    # -- phase 3: restart clean, verify the contract -------------------
    proc, port, banner = start_server(root, None, env)
    try:
        with RecoilClient("127.0.0.1", port, timeout_s=30) as client:
            metrics = client.metrics()
            recovery = metrics["store"]["recovery"]
            recovered = set(recovery["recovered"])
            quarantined = recovery["quarantined"]
            print(f"recovery_smoke: recovered {sorted(recovered)}, "
                  f"{len(quarantined)} quarantined", flush=True)

            # The SIGKILL itself may add a genuine torn tmp file on
            # top of the planted damage, so: at least the planted
            # count, and every planted file individually accounted.
            if len(quarantined) < planted:
                fail(f"expected >= {planted} quarantined files "
                     f"(planted), got {quarantined}")
            q_files = " ".join(q["file"] for q in quarantined)
            if "torn.999.part" not in q_files:
                fail(f"planted tmp leftover not quarantined: {quarantined}")
            if victim is not None and victim.name not in q_files:
                fail(f"planted truncation not quarantined: {quarantined}")
            if metrics["store"]["disk"]["quarantines"] != len(quarantined):
                fail("quarantine counter disagrees with recovery report")

            served = absent = 0
            for name in acked:
                if name in recovered:
                    out = client.decompress(name, 2)
                    if not np.array_equal(out, datasets[name]):
                        fail(f"recovered asset {name!r} decoded WRONG")
                    served += 1
                else:
                    # Lost to an injected persist fault or the planted
                    # truncation: must be refused, never served wrong.
                    try:
                        client.decompress(name, 2)
                    except Exception:
                        absent += 1
                    else:
                        fail(f"unrecovered asset {name!r} was served")
        print(f"recovery_smoke: {served} bit-identical, {absent} "
              "refused (typed), contract holds", flush=True)
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30)

    # -- phase 4: offline scrub agrees ---------------------------------
    scrub = subprocess.run(
        [sys.executable, "-m", "repro.cli", "store", "scrub",
         "--store-dir", str(root)],
        capture_output=True, text=True, env=env, timeout=120,
    )
    if scrub.returncode != 0:
        fail(f"post-recovery scrub found rot: {scrub.stdout}")
    print("recovery_smoke: OK", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
